//! Flow Updating (FU) — Jesus, Baquero & Almeida, DAIS 2009.
//!
//! The independently-developed flow-based averaging algorithm the paper
//! cites as related work \[7\]. Like PF it derives each node's value from
//! *flows* (`e_i = v_i − Σ_j f_{i,j}`) so mass is never lost; unlike the
//! push-sum family it converges by *local averaging*: a node estimates the
//! average of itself and a neighbor and adjusts the connecting flow so
//! both would report exactly that average.
//!
//! Messages carry absolute state (flow value + estimate), so a lost
//! message merely delays progress and a duplicated one is idempotent.
//! The original formulation broadcasts to all neighbors every tick; this
//! implementation uses the one-partner-per-round variant so it is driven
//! by the same scheduler as the other protocols (fairness of comparison).
//!
//! FU is average-only (it has no weight machinery), and its flows converge
//! to the same execution-independent equilibrium transport values as PF's
//! — meaning it shares PF's cancellation-driven accuracy ceiling, which is
//! the point of including it as a comparator (cf. paper's claim that the
//! weaknesses are "common among all existing fault tolerant distributed
//! reduction algorithms").

use crate::aggregate::InitialData;
use crate::payload::Payload;
use crate::protocol::ReductionProtocol;
use gr_netsim::{Corrupt, Protocol};
use gr_topology::{Graph, NodeId};

/// A flow-updating message: the sender's flow toward the receiver and the
/// sender's current estimate, both absolute state.
#[derive(Clone, Debug, PartialEq)]
pub struct FuMsg<P> {
    /// `f_{i,j}` as stored at the sender.
    pub flow: P,
    /// The sender's local average estimate.
    pub estimate: P,
}

impl<P: Payload> Corrupt for FuMsg<P> {
    fn corruptible_bits(&self) -> u32 {
        self.flow.corruptible_bits() + self.estimate.corruptible_bits()
    }
    fn flip_bit(&mut self, bit: u32) {
        let fb = self.flow.corruptible_bits();
        if bit < fb {
            self.flow.flip_bit(bit);
        } else {
            self.estimate.flip_bit(bit - fb);
        }
    }
}

/// Flow-updating protocol state (all nodes; per-edge state arc-indexed).
pub struct FlowUpdating<'g, P: Payload> {
    graph: &'g Graph,
    /// Initial values `v_i`.
    init: Vec<P>,
    /// `flows[arc(i,j)] = f_{i,j}`.
    flows: Vec<P>,
    /// Last known estimate of the neighbor across each arc.
    nbr_est: Vec<P>,
    dim: usize,
    /// Recycled wire buffers, one arena per engine partition (fed by
    /// [`Protocol::reclaim`] / [`Protocol::part_reclaim`]).
    pools: Vec<Vec<FuMsg<P>>>,
    /// Reused estimate / pairwise-average buffers for `on_send`, one pair
    /// per engine partition — keep heap-spilled payloads (dim above the
    /// inline cap) allocation-free on the hot path.
    scratch_e: Vec<P>,
    scratch_a: Vec<P>,
}

impl<'g, P: Payload> FlowUpdating<'g, P> {
    /// Initialise over `graph`. Flow updating computes the *average*, so
    /// the initial data must carry unit weights.
    ///
    /// # Panics
    /// Panics if any weight differs from 1 (FU cannot express other
    /// aggregates) or sizes mismatch.
    pub fn new(graph: &'g Graph, init: &InitialData<P>) -> Self {
        assert_eq!(graph.len(), init.len(), "graph/init size mismatch");
        assert!(
            (0..init.len()).all(|i| init.weight(i) == 1.0),
            "flow updating is average-only (unit weights required)"
        );
        let dim = init.dim();
        let values: Vec<P> = (0..init.len()).map(|i| init.value(i).clone()).collect();
        // Neighbor estimates start at the neighbor's *initial* value? The
        // node cannot know it; FU initialises them to zero and lets the
        // first exchange overwrite.
        let arcs = graph.arc_count();
        FlowUpdating {
            graph,
            init: values,
            flows: vec![P::zeros(dim); arcs],
            nbr_est: vec![P::zeros(dim); arcs],
            dim,
            pools: vec![Vec::new()],
            scratch_e: vec![P::zeros(dim)],
            scratch_a: vec![P::zeros(dim)],
        }
    }

    #[inline]
    fn arc(&self, i: NodeId, j: NodeId) -> usize {
        let slot = self
            .graph
            .neighbor_slot(i, j)
            .expect("message/failure on a non-edge");
        self.graph.arc_base(i) + slot
    }

    /// The flow variable `f_{i,j}` (inspection hook).
    pub fn flow(&self, i: NodeId, j: NodeId) -> &P {
        &self.flows[self.arc(i, j)]
    }

    /// `e_i = v_i − Σ_j f_{i,j}` (plain f64 arithmetic, like PF).
    pub fn estimate_value(&self, i: NodeId) -> P {
        let mut e = self.init[i as usize].clone();
        let base = self.graph.arc_base(i);
        for slot in 0..self.graph.degree(i) {
            e.sub_assign(&self.flows[base + slot]);
        }
        e
    }

    /// Replace node `i`'s local input value mid-run (live monitoring —
    /// the original motivation of flow updating's flow-derived state).
    pub fn set_local_value(&mut self, i: NodeId, value: P) {
        assert_eq!(value.dim(), self.dim, "payload dimension mismatch");
        self.init[i as usize] = value;
    }

    /// Largest flow magnitude (shares PF's growth behaviour).
    pub fn max_flow_magnitude(&self) -> f64 {
        self.flows
            .iter()
            .flat_map(|f| f.components().iter().copied())
            .fold(0.0f64, |a, c| a.max(c.abs()))
    }
}

impl<'g, P: Payload> FlowUpdating<'g, P> {
    /// [`Protocol::on_send`] against partition `part`'s arenas.
    fn send_impl(&mut self, part: usize, node: NodeId, target: NodeId) -> FuMsg<P> {
        // Pairwise flow update: compute the average `a` of my estimate and
        // my belief about the target's, then set the flow so that my value
        // becomes exactly `a` and (by antisymmetry) the target's would too.
        let idx = self.arc(node, target);
        let FlowUpdating {
            graph,
            init,
            flows,
            nbr_est,
            scratch_e,
            scratch_a,
            pools,
            ..
        } = self;
        let scratch_e = &mut scratch_e[part];
        let scratch_a = &mut scratch_a[part];
        // e_i into the scratch buffer ([`Self::estimate_value`] with the
        // same operation order, minus the allocation).
        scratch_e.copy_from_components(init[node as usize].components());
        let base = graph.arc_base(node);
        for slot in 0..graph.degree(node) {
            scratch_e.sub_assign(&flows[base + slot]);
        }
        // a = (e + nbr_est)/2
        scratch_a.copy_from_components(scratch_e.components());
        scratch_a.add_assign(&nbr_est[idx]);
        scratch_a.scale(0.5);
        // f += e − a  (moves my estimate to a); e is dead after this, so
        // its buffer doubles as the delta.
        scratch_e.sub_assign(scratch_a);
        flows[idx].add_assign(scratch_e);
        nbr_est[idx].copy_from_components(scratch_a.components());
        // Recycled buffers are fully overwritten, so the wire bytes are
        // identical to a freshly cloned message.
        match pools[part].pop() {
            Some(mut msg) => {
                msg.flow.copy_from_components(flows[idx].components());
                msg.estimate.copy_from_components(scratch_a.components());
                msg
            }
            None => FuMsg {
                flow: flows[idx].clone(),
                estimate: scratch_a.clone(),
            },
        }
    }
}

impl<'g, P: Payload> Protocol for FlowUpdating<'g, P> {
    type Msg = FuMsg<P>;

    // A send touches the sending node's arc range plus partition-indexed
    // arenas; a receive swaps state on the receiving node's mirror arc.
    // Failure hooks touch only the first argument's arcs.
    const PARALLEL_SAFE: bool = true;

    fn set_partitions(&mut self, partitions: usize) {
        self.pools.resize_with(partitions, Vec::new);
        let dim = self.dim;
        self.scratch_e.resize_with(partitions, || P::zeros(dim));
        self.scratch_a.resize_with(partitions, || P::zeros(dim));
    }

    fn on_send(&mut self, node: NodeId, target: NodeId) -> FuMsg<P> {
        self.send_impl(0, node, target)
    }

    fn part_send(&mut self, part: usize, node: NodeId, target: NodeId) -> FuMsg<P> {
        self.send_impl(part, node, target)
    }

    fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut FuMsg<P>) {
        let idx = self.arc(node, from);
        // Steal the payloads in place of copying them: the buffer slot is
        // dead after this call (see the `Protocol` docs).
        msg.flow.negate();
        std::mem::swap(&mut self.flows[idx], &mut msg.flow);
        std::mem::swap(&mut self.nbr_est[idx], &mut msg.estimate);
    }

    fn reclaim(&mut self, msg: FuMsg<P>) {
        self.pools[0].push(msg);
    }

    fn part_reclaim(&mut self, part: usize, msg: FuMsg<P>) {
        self.pools[part].push(msg);
    }

    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        let idx = self.arc(node, neighbor);
        self.flows[idx] = P::zeros(self.dim);
        self.nbr_est[idx] = P::zeros(self.dim);
    }

    fn on_restart(&mut self, node: NodeId) {
        // Rejoin with zeroed per-edge state: the estimate reverts to the
        // retained `v_i`. Peers reset their mirrors through
        // `on_neighbor_restarted` (default: the link-failure handling), so
        // every edge restarts pairwise-conserved.
        let base = self.graph.arc_base(node);
        for slot in 0..self.graph.degree(node) {
            self.flows[base + slot] = P::zeros(self.dim);
            self.nbr_est[base + slot] = P::zeros(self.dim);
        }
    }
}

impl<'g, P: Payload> ReductionProtocol for FlowUpdating<'g, P> {
    fn node_count(&self) -> usize {
        self.init.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn write_mass(&self, node: NodeId, values: &mut [f64]) -> f64 {
        let e = self.estimate_value(node);
        values.copy_from_slice(e.components());
        1.0
    }

    fn write_estimate(&self, node: NodeId, out: &mut [f64]) {
        let e = self.estimate_value(node);
        out.copy_from_slice(e.components());
    }

    fn write_flow(&self, i: NodeId, j: NodeId, values: &mut [f64]) -> Option<f64> {
        values.copy_from_slice(self.flow(i, j).components());
        // FU transports no weight (averaging with fixed unit weights), so
        // the flow's weight component is identically zero.
        Some(0.0)
    }

    fn max_flow(&self) -> Option<f64> {
        Some(self.max_flow_magnitude())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;
    use gr_netsim::{FaultPlan, Simulator};
    use gr_numerics::max_relative_error;
    use gr_topology::{bus, complete, hypercube, ring};

    fn avg_data(n: usize, seed: u64) -> InitialData<f64> {
        InitialData::uniform_random(n, AggregateKind::Average, seed)
    }

    #[test]
    fn converges_on_complete_graph() {
        let g = complete(16);
        let data = avg_data(16, 1);
        let mut sim = Simulator::new(&g, FlowUpdating::new(&g, &data), FaultPlan::none(), 1);
        // FU converges noticeably slower than push-sum on dense graphs
        // (each pairwise update only moves toward a possibly stale local
        // average), so give it room.
        sim.run(4000);
        let err = max_relative_error(sim.protocol().scalar_estimates(), data.reference()[0]);
        assert!(err < 1e-12, "err={err}");
    }

    #[test]
    fn converges_on_ring_and_hypercube() {
        let g = ring(10);
        let data = avg_data(10, 2);
        let mut sim = Simulator::new(&g, FlowUpdating::new(&g, &data), FaultPlan::none(), 2);
        sim.run(2000);
        let err = max_relative_error(sim.protocol().scalar_estimates(), data.reference()[0]);
        assert!(err < 1e-12, "ring err={err}");

        let h = hypercube(5);
        let data = avg_data(32, 3);
        let mut sim = Simulator::new(&h, FlowUpdating::new(&h, &data), FaultPlan::none(), 3);
        sim.run(1500);
        let err = max_relative_error(sim.protocol().scalar_estimates(), data.reference()[0]);
        assert!(err < 1e-12, "hypercube err={err}");
    }

    #[test]
    fn tolerates_heavy_message_loss() {
        let g = complete(12);
        let data = avg_data(12, 4);
        let mut sim = Simulator::new(
            &g,
            FlowUpdating::new(&g, &data),
            FaultPlan::with_loss(0.4),
            4,
        );
        sim.run(2000);
        let err = max_relative_error(sim.protocol().scalar_estimates(), data.reference()[0]);
        assert!(err < 1e-10, "err={err}");
    }

    #[test]
    fn mass_conserved_sequentially() {
        use rand::prelude::*;
        let g = hypercube(3);
        let data = avg_data(8, 5);
        let mut fu = FlowUpdating::new(&g, &data);
        let total0: f64 = (0..8).map(|i| fu.estimate_value(i)).sum();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..300 {
            let i: NodeId = rng.random_range(0..8);
            let nbrs = g.neighbors(i);
            let k = nbrs[rng.random_range(0..nbrs.len())];
            let mut msg = fu.on_send(i, k);
            fu.on_receive(k, i, &mut msg);
            let total: f64 = (0..8).map(|i| fu.estimate_value(i)).sum();
            assert!((total - total0).abs() < 1e-10, "mass drifted: {total}");
        }
    }

    #[test]
    fn bus_flows_grow_with_n_like_pf() {
        // FU shares PF's structural accuracy hazard: equilibrium flows on
        // the bus case are the O(n) transport values.
        let n = 24;
        let g = bus(n);
        let data = InitialData::bus_case(n);
        let mut sim = Simulator::new(&g, FlowUpdating::new(&g, &data), FaultPlan::none(), 7);
        sim.run(30_000);
        let err = max_relative_error(sim.protocol().scalar_estimates(), data.reference()[0]);
        assert!(err < 1e-9, "not converged: {err}");
        assert!(
            sim.protocol().max_flow_magnitude() > (n / 2) as f64,
            "FU flows should carry the O(n) transport"
        );
    }

    #[test]
    #[should_panic(expected = "average-only")]
    fn sum_weights_rejected() {
        let g = bus(3);
        let data = InitialData::with_kind(vec![1.0, 2.0, 3.0], AggregateKind::Sum);
        let _ = FlowUpdating::new(&g, &data);
    }
}
