//! High-level run orchestration: build a protocol, drive it, measure it.
//!
//! Every experiment in the paper has the same skeleton: initialise a
//! reduction over a topology, run synchronous rounds under some fault
//! plan, and record the per-node local errors against the true aggregate
//! (which the experimenter — unlike the nodes — knows exactly). This
//! module packages that skeleton once, with oracle-based stopping rules
//! (target accuracy, error plateau, round cap) and optional error-series
//! recording for the figure harness.

use crate::aggregate::InitialData;
use crate::flow_updating::FlowUpdating;
use crate::payload::Payload;
use crate::protocol::ReductionProtocol;
use crate::push_cancel_flow::{PhiMode, PushCancelFlow};
use crate::push_flow::PushFlow;
use crate::push_sum::PushSum;
use gr_netsim::{FaultPlan, Schedule, SimOptions, SimStats, Simulator};
use gr_numerics::{Dd, RelErr};
use gr_topology::{Graph, NodeId};

/// Which algorithm to run (experiment-harness dispatch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Kempe et al. push-sum (no fault tolerance).
    PushSum,
    /// Push-flow (paper Fig. 1).
    PushFlow,
    /// Push-cancel-flow (paper Fig. 5) with the given ϕ variant.
    PushCancelFlow(PhiMode),
    /// Flow updating (Jesus et al., average-only).
    FlowUpdating,
}

impl Algorithm {
    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::PushSum => "push-sum",
            Algorithm::PushFlow => "PF",
            Algorithm::PushCancelFlow(PhiMode::Eager) => "PCF",
            Algorithm::PushCancelFlow(PhiMode::Hardened) => "PCF-hardened",
            Algorithm::FlowUpdating => "FU",
        }
    }

    /// All algorithm variants (sweep convenience).
    pub fn all() -> [Algorithm; 5] {
        [
            Algorithm::PushSum,
            Algorithm::PushFlow,
            Algorithm::PushCancelFlow(PhiMode::Eager),
            Algorithm::PushCancelFlow(PhiMode::Hardened),
            Algorithm::FlowUpdating,
        ]
    }
}

/// Stopping rules and sampling cadence for a run. All stopping rules are
/// *oracle-based* (they look at the true error); purely local detection
/// lives in [`crate::LocalConvergence`].
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Stop once the max local relative error is at or below this.
    pub target_accuracy: Option<f64>,
    /// Hard round cap.
    pub max_rounds: u64,
    /// Sample the error series every this many rounds (0 = never; the
    /// final state is always measured).
    pub record_every: u64,
    /// Stop when the best max-error seen has not improved by at least 10%
    /// within this many rounds — "globally achievable accuracy" probing
    /// for Figs. 3/6, where PF never reaches the target.
    pub plateau_window: Option<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            target_accuracy: Some(1e-15),
            max_rounds: 100_000,
            record_every: 0,
            plateau_window: None,
        }
    }
}

impl RunConfig {
    /// Run exactly `rounds` rounds, recording every `every`.
    pub fn fixed(rounds: u64, every: u64) -> Self {
        RunConfig {
            target_accuracy: None,
            max_rounds: rounds,
            record_every: every,
            plateau_window: None,
        }
    }

    /// Run to `eps` max error or until a plateau/round cap, whichever
    /// comes first.
    pub fn to_accuracy(eps: f64, max_rounds: u64) -> Self {
        RunConfig {
            target_accuracy: Some(eps),
            max_rounds,
            record_every: 0,
            plateau_window: Some(4 * 1024),
        }
    }
}

/// One sampled point of the error trajectory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorSample {
    /// Round at which the sample was taken (after that round completed).
    pub round: u64,
    /// Max over alive nodes (and components) of the local relative error.
    pub max: f64,
    /// Median over alive nodes of the (per-node max-component) error.
    pub median: f64,
}

/// Everything a run produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Rounds executed.
    pub rounds: u64,
    /// Error at the final round.
    pub final_err: ErrorSample,
    /// Best (smallest) max-error observed at any sample point.
    pub best_max_err: f64,
    /// `true` if the target accuracy was reached.
    pub converged: bool,
    /// The sampled trajectory (empty unless `record_every > 0`).
    pub series: Vec<ErrorSample>,
    /// Transport statistics from the simulator.
    pub sim: SimStats,
}

/// The achievable aggregate over the given nodes, computed by the oracle
/// from the protocol's *current* mass: after a fail-stop crash the dead
/// node's current holding is gone for good, and the survivors' target is
/// the ratio of their remaining total mass. `None` if the remaining
/// weights sum to zero (e.g. a SUM reduction whose weight-bearing node
/// died — the aggregate is then undefined).
pub fn mass_reference<P: ReductionProtocol + ?Sized>(
    proto: &P,
    nodes: impl Iterator<Item = NodeId>,
) -> Option<Vec<Dd>> {
    let mut out = Vec::new();
    Measurer::new()
        .mass_reference(proto, nodes, &mut out)
        .then_some(out)
}

/// Measure the current error of `proto` against per-component references,
/// over the given alive nodes.
pub fn measure_error<P: ReductionProtocol + ?Sized>(
    proto: &P,
    refs: &[Dd],
    alive: impl Iterator<Item = NodeId>,
    round: u64,
) -> ErrorSample {
    Measurer::new().measure_error(proto, refs, alive, round)
}

/// Reusable scratch space for the oracle measurements. The run loop
/// samples the error every few rounds; with a `Measurer` those samples
/// reuse the same estimate/sort buffers instead of allocating four
/// vectors per sample, which keeps the steady-state loop allocation-free.
/// The free functions [`mass_reference`] and [`measure_error`] are
/// one-shot wrappers around a fresh `Measurer`; results are bitwise
/// identical either way.
#[derive(Clone, Debug, Default)]
pub struct Measurer {
    /// Per-node estimate buffer (`dim` wide).
    buf: Vec<f64>,
    /// Per-node worst-component error of the current sample.
    per_node: Vec<f64>,
    /// Sort scratch for the order statistics.
    sorted: Vec<f64>,
    /// Component accumulators for the mass reference.
    vsum: Vec<Dd>,
}

impl Measurer {
    /// A measurer with empty (lazily grown) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// In-place [`mass_reference`]: writes the survivors' achievable
    /// aggregate into `out` and returns `true`, or returns `false`
    /// leaving `out` untouched when the remaining weight is zero (the
    /// aggregate is then undefined).
    pub fn mass_reference<P: ReductionProtocol + ?Sized>(
        &mut self,
        proto: &P,
        nodes: impl Iterator<Item = NodeId>,
        out: &mut Vec<Dd>,
    ) -> bool {
        let dim = proto.dim();
        self.vsum.clear();
        self.vsum.resize(dim, Dd::ZERO);
        self.buf.clear();
        self.buf.resize(dim, 0.0);
        let mut wsum = Dd::ZERO;
        for i in nodes {
            let w = proto.write_mass(i, &mut self.buf);
            for (acc, &c) in self.vsum.iter_mut().zip(self.buf.iter()) {
                *acc += c;
            }
            wsum += w;
        }
        if wsum.is_zero() {
            return false;
        }
        out.clear();
        out.extend(self.vsum.iter().map(|&v| v / wsum));
        true
    }

    /// In-place [`measure_error`]: identical arithmetic, reused buffers.
    pub fn measure_error<P: ReductionProtocol + ?Sized>(
        &mut self,
        proto: &P,
        refs: &[Dd],
        alive: impl Iterator<Item = NodeId>,
        round: u64,
    ) -> ErrorSample {
        let dim = proto.dim();
        self.buf.clear();
        self.buf.resize(dim, 0.0);
        self.per_node.clear();
        for i in alive {
            proto.write_estimate(i, &mut self.buf);
            let mut worst = 0.0f64;
            for (k, &r) in refs.iter().enumerate() {
                let e = gr_numerics::relative_error(self.buf[k], r);
                // NB: `f64::max` would silently drop a NaN operand; treat
                // any non-comparable value as a destroyed estimate.
                if e.is_nan() {
                    worst = f64::INFINITY;
                } else {
                    worst = worst.max(e);
                }
            }
            self.per_node.push(worst);
        }
        // RelErr against a zero reference returns absolute values — i.e.
        // the numbers themselves; reuse its max/median machinery (the
        // scratch variant is bitwise-identical to `RelErr::of`).
        let e = RelErr::of_with_scratch(self.per_node.iter().copied(), Dd::ZERO, &mut self.sorted);
        ErrorSample {
            round,
            max: e.max,
            median: e.median,
        }
    }
}

/// Drive an already-constructed protocol under the standard loop.
/// Exposed so callers with custom protocols (or vector payloads) can reuse
/// the stopping/recording logic; most callers want [`run_reduction`].
pub fn run_with_protocol<Pr, P>(
    graph: &Graph,
    protocol: Pr,
    data: &InitialData<P>,
    plan: FaultPlan,
    seed: u64,
    cfg: RunConfig,
) -> RunResult
where
    P: Payload,
    Pr: ReductionProtocol,
{
    run_with_schedule(graph, protocol, data, plan, seed, cfg, Schedule::uniform())
}

/// [`run_with_protocol`] with an explicit schedule.
#[allow(clippy::too_many_arguments)]
pub fn run_with_schedule<Pr, P>(
    graph: &Graph,
    protocol: Pr,
    data: &InitialData<P>,
    plan: FaultPlan,
    seed: u64,
    cfg: RunConfig,
    schedule: Schedule,
) -> RunResult
where
    P: Payload,
    Pr: ReductionProtocol,
{
    run_with_options(
        graph,
        protocol,
        data,
        plan,
        seed,
        cfg,
        SimOptions {
            schedule,
            ..SimOptions::default()
        },
    )
}

/// [`run_with_protocol`] with full execution-model control (activation
/// discipline, message delay).
#[allow(clippy::too_many_arguments)]
pub fn run_with_options<Pr, P>(
    graph: &Graph,
    protocol: Pr,
    data: &InitialData<P>,
    plan: FaultPlan,
    seed: u64,
    cfg: RunConfig,
    options: SimOptions,
) -> RunResult
where
    P: Payload,
    Pr: ReductionProtocol,
{
    let mut sim = Simulator::with_options(graph, protocol, plan, seed, options);
    let mut measurer = Measurer::new();
    let mut refs = data.reference();
    let mut alive_count = graph.len();
    let mut crashed = false;

    let mut series = Vec::new();
    let mut best = f64::INFINITY;
    let mut best_round = 0u64;
    let mut converged = false;

    let check_every = if cfg.record_every > 0 {
        cfg.record_every
    } else {
        8
    };

    loop {
        sim.step();
        let round = sim.round();
        let done = round >= cfg.max_rounds;
        if round % check_every == 0 || done {
            // Once the alive set has shrunk (crash experiments), the fixed
            // initial-data reference is void: the dead node took its
            // current holding with it. The survivors' achievable aggregate
            // is the ratio of their remaining total mass — but in-flight
            // (crossing) exchanges distort any single snapshot of that
            // ratio by O(current error), so recompute it at *every*
            // sample; it stabilises exactly as consensus forms.
            let now_alive = sim.alive_nodes().count();
            if now_alive != alive_count {
                alive_count = now_alive;
                crashed = true;
            }
            if crashed && !measurer.mass_reference(sim.protocol(), sim.alive_nodes(), &mut refs) {
                refs.clear();
                refs.resize(data.dim(), Dd::ZERO);
            }
            let sample = measurer.measure_error(sim.protocol(), &refs, sim.alive_nodes(), round);
            if cfg.record_every > 0 {
                series.push(sample);
            }
            if sample.max < best * 0.9 {
                best_round = round;
            }
            if sample.max < best {
                best = sample.max;
            }
            if let Some(eps) = cfg.target_accuracy {
                if sample.max <= eps {
                    converged = true;
                }
            }
            let plateaued = cfg
                .plateau_window
                .is_some_and(|w| round.saturating_sub(best_round) >= w);
            if converged || done || plateaued {
                return RunResult {
                    rounds: round,
                    final_err: sample,
                    best_max_err: best,
                    converged,
                    series,
                    sim: sim.stats(),
                };
            }
        }
    }
}

/// Build and run `algorithm` over scalar data — the main experiment entry
/// point.
pub fn run_reduction(
    algorithm: Algorithm,
    graph: &Graph,
    data: &InitialData<f64>,
    plan: FaultPlan,
    seed: u64,
    cfg: RunConfig,
) -> RunResult {
    match algorithm {
        Algorithm::PushSum => {
            run_with_protocol(graph, PushSum::new(graph, data), data, plan, seed, cfg)
        }
        Algorithm::PushFlow => {
            run_with_protocol(graph, PushFlow::new(graph, data), data, plan, seed, cfg)
        }
        Algorithm::PushCancelFlow(mode) => run_with_protocol(
            graph,
            PushCancelFlow::with_mode(graph, data, mode),
            data,
            plan,
            seed,
            cfg,
        ),
        Algorithm::FlowUpdating => {
            run_with_protocol(graph, FlowUpdating::new(graph, data), data, plan, seed, cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;
    use gr_topology::{complete, hypercube};

    fn data(n: usize) -> InitialData<f64> {
        InitialData::uniform_random(n, AggregateKind::Average, 3)
    }

    #[test]
    fn run_to_accuracy_converges() {
        let g = hypercube(4);
        let d = data(16);
        let r = run_reduction(
            Algorithm::PushCancelFlow(PhiMode::Eager),
            &g,
            &d,
            FaultPlan::none(),
            1,
            RunConfig::to_accuracy(1e-14, 10_000),
        );
        assert!(r.converged, "did not converge: {:?}", r.final_err);
        assert!(r.final_err.max <= 1e-14);
        assert!(r.rounds < 10_000);
    }

    #[test]
    fn fixed_rounds_records_series() {
        let g = complete(8);
        let d = data(8);
        let r = run_reduction(
            Algorithm::PushFlow,
            &g,
            &d,
            FaultPlan::none(),
            2,
            RunConfig::fixed(100, 10),
        );
        assert_eq!(r.rounds, 100);
        assert_eq!(r.series.len(), 10);
        assert_eq!(r.series.last().unwrap().round, 100);
        // error decreases over the run
        assert!(r.series.last().unwrap().max < r.series[0].max);
    }

    #[test]
    fn plateau_detection_stops_early() {
        // Push-sum under heavy loss converges to a *wrong* value: error
        // plateaus well above target; the plateau rule must fire.
        let g = complete(8);
        let d = data(8);
        let cfg = RunConfig {
            target_accuracy: Some(1e-15),
            max_rounds: 500_000,
            record_every: 0,
            plateau_window: Some(500),
        };
        let r = run_reduction(
            Algorithm::PushSum,
            &g,
            &d,
            FaultPlan::with_loss(0.3),
            3,
            cfg,
        );
        assert!(!r.converged);
        assert!(
            r.rounds < 100_000,
            "plateau should stop the run: {}",
            r.rounds
        );
        assert!(r.final_err.max > 1e-10, "loss must bias push-sum");
    }

    #[test]
    fn all_algorithms_run_and_label() {
        let g = complete(8);
        let d = data(8);
        for alg in Algorithm::all() {
            let r = run_reduction(alg, &g, &d, FaultPlan::none(), 4, RunConfig::fixed(200, 0));
            assert_eq!(r.rounds, 200, "{}", alg.label());
            assert!(
                r.final_err.max < 1e-4,
                "{} did not make progress: {:?}",
                alg.label(),
                r.final_err
            );
            assert!(!alg.label().is_empty());
        }
    }

    #[test]
    fn crash_changes_reference_to_survivors() {
        let g = hypercube(3);
        let d = data(8);
        let plan = FaultPlan::none().crash_node(5, 50);
        let r = run_reduction(
            Algorithm::PushCancelFlow(PhiMode::Eager),
            &g,
            &d,
            plan,
            5,
            RunConfig::to_accuracy(1e-13, 50_000),
        );
        // Survivors re-converge to the survivors' aggregate.
        assert!(r.converged, "survivors should converge: {:?}", r.final_err);
    }
}
