//! Binary wire format for the protocol messages.
//!
//! The real transports in `gr-transport` move *bytes*, not Rust values;
//! this module fixes the mapping. The format is bincode-style — fixed
//! little-endian scalars, a `u32` length prefix for vector payloads, no
//! self-description — so encoding is a `memcpy`-shaped walk over the
//! message fields and a frame is byte-identical for identical field bits
//! (which is what makes the pinned wire goldens and the twin-equivalence
//! harness possible).
//!
//! ## Frame layout
//!
//! ```text
//! [version: u8] [kind: u8] [body_len: u32 LE] [body: body_len bytes]
//! ```
//!
//! * `version` is [`WIRE_VERSION`]; a decoder rejects any other value
//!   with [`WireError::Version`] — the guard that lets the schema evolve
//!   without old peers misparsing new frames.
//! * `kind` identifies the message type ([`WireMsg::KIND`]); it fences a
//!   PCF endpoint from, say, a flow-updating frame arriving on the same
//!   port.
//! * `body_len` must account for exactly the remaining bytes: datagram
//!   transports deliver one frame per packet and any disagreement means
//!   truncation or garbage.
//!
//! Payload vectors encode as `[dim: u32 LE][dim × f64 LE]`; a
//! [`Mass`](crate::Mass) appends its `f64` weight. Scalar (`f64`)
//! payloads use `dim == 1`, so a scalar run and a dim-1 vector run
//! produce identical frames.

use crate::flow_updating::FuMsg;
use crate::payload::{Mass, Payload};
use crate::push_cancel_flow::PcfMsg;

/// Current wire-format version, the first byte of every frame.
pub const WIRE_VERSION: u8 = 1;

/// Bytes of frame header before the body (`version + kind + body_len`).
pub const FRAME_HEADER: usize = 6;

/// A frame that could not be decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The version byte does not match [`WIRE_VERSION`] — the peer runs
    /// an incompatible build.
    Version {
        /// Version byte found on the wire.
        got: u8,
    },
    /// The kind byte does not match the expected message type.
    Kind {
        /// Kind byte found on the wire.
        got: u8,
        /// Kind this decoder accepts.
        want: u8,
    },
    /// The frame ended before the declared structure was complete.
    Truncated {
        /// Bytes the decoder needed next.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The declared body length disagrees with the bytes on the wire.
    Length {
        /// Body length declared in the header.
        declared: usize,
        /// Body bytes actually present.
        actual: usize,
    },
    /// The body decoded cleanly but left unread bytes behind.
    Trailing {
        /// Bytes left over after the body structure ended.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Version { got } => {
                write!(f, "wire version {got} not supported (want {WIRE_VERSION})")
            }
            WireError::Kind { got, want } => {
                write!(f, "message kind {got} where kind {want} was expected")
            }
            WireError::Truncated { need, have } => {
                write!(f, "frame truncated: needed {need} more bytes, had {have}")
            }
            WireError::Length { declared, actual } => {
                write!(
                    f,
                    "body length mismatch: header says {declared}, got {actual}"
                )
            }
            WireError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after message body")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor over a frame body.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.bytes.len() - self.pos;
        if have < n {
            return Err(WireError::Truncated { need: n, have });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next little-endian `f64` (bit-exact, NaN payloads included).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[inline]
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_payload<P: Payload>(out: &mut Vec<u8>, p: &P) {
    let comps = p.components();
    put_u32(out, comps.len() as u32);
    for &c in comps {
        put_f64(out, c);
    }
}

fn get_payload<P: Payload>(r: &mut Reader<'_>, scratch: &mut Vec<f64>) -> Result<P, WireError> {
    let dim = r.u32()? as usize;
    scratch.clear();
    scratch.reserve(dim);
    for _ in 0..dim {
        scratch.push(r.f64()?);
    }
    Ok(P::from_components(scratch))
}

fn put_mass<P: Payload>(out: &mut Vec<u8>, m: &Mass<P>) {
    put_payload(out, &m.value);
    put_f64(out, m.weight);
}

fn get_mass<P: Payload>(r: &mut Reader<'_>, scratch: &mut Vec<f64>) -> Result<Mass<P>, WireError> {
    let value = get_payload(r, scratch)?;
    let weight = r.f64()?;
    Ok(Mass { value, weight })
}

/// A message type with a fixed binary wire representation.
///
/// Implementors provide the body codec; the framing (version byte, kind
/// byte, length prefix, trailing-byte check) is shared through the
/// provided [`encode_frame`](WireMsg::encode_frame) /
/// [`decode_frame`](WireMsg::decode_frame) pair, so every backend frames
/// identically and version/kind policing cannot be forgotten.
pub trait WireMsg: Sized {
    /// Frame kind byte — distinct per message type.
    const KIND: u8;

    /// Append the body (no header) to `out`.
    fn encode_body(&self, out: &mut Vec<u8>);

    /// Decode a body produced by [`encode_body`](WireMsg::encode_body).
    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Append a complete frame (header + body) to `out`.
    fn encode_frame(&self, out: &mut Vec<u8>) {
        out.push(WIRE_VERSION);
        out.push(Self::KIND);
        let len_at = out.len();
        put_u32(out, 0); // patched below
        let body_start = out.len();
        self.encode_body(out);
        let body_len = (out.len() - body_start) as u32;
        out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Decode one complete frame (as produced by
    /// [`encode_frame`](WireMsg::encode_frame) — exactly one frame per
    /// slice, the datagram discipline).
    fn decode_frame(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < FRAME_HEADER {
            return Err(WireError::Truncated {
                need: FRAME_HEADER,
                have: bytes.len(),
            });
        }
        let version = bytes[0];
        if version != WIRE_VERSION {
            return Err(WireError::Version { got: version });
        }
        let kind = bytes[1];
        if kind != Self::KIND {
            return Err(WireError::Kind {
                got: kind,
                want: Self::KIND,
            });
        }
        let declared = u32::from_le_bytes(bytes[2..6].try_into().unwrap()) as usize;
        let body = &bytes[FRAME_HEADER..];
        if declared != body.len() {
            return Err(WireError::Length {
                declared,
                actual: body.len(),
            });
        }
        let mut r = Reader::new(body);
        let msg = Self::decode_body(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Trailing {
                extra: r.remaining(),
            });
        }
        Ok(msg)
    }
}

/// Push-sum / push-pull-sum / push-flow wire message: one mass.
impl<P: Payload> WireMsg for Mass<P> {
    const KIND: u8 = 1;

    fn encode_body(&self, out: &mut Vec<u8>) {
        put_mass(out, self);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut scratch = Vec::new();
        get_mass(r, &mut scratch)
    }
}

/// PCF wire message: both flow slots, control variables, fold ledger.
impl<P: Payload> WireMsg for PcfMsg<P> {
    const KIND: u8 = 2;

    fn encode_body(&self, out: &mut Vec<u8>) {
        put_mass(out, &self.f1);
        put_mass(out, &self.f2);
        put_mass(out, &self.folded);
        put_mass(out, &self.base);
        out.push(self.c);
        put_u64(out, self.r);
        put_u64(out, self.inc);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut scratch = Vec::new();
        let f1 = get_mass(r, &mut scratch)?;
        let f2 = get_mass(r, &mut scratch)?;
        let folded = get_mass(r, &mut scratch)?;
        let base = get_mass(r, &mut scratch)?;
        let c = r.u8()?;
        let rr = r.u64()?;
        let inc = r.u64()?;
        Ok(PcfMsg {
            f1,
            f2,
            c,
            r: rr,
            folded,
            base,
            inc,
        })
    }
}

/// Flow-updating wire message: absolute flow plus the sender's estimate.
impl<P: Payload> WireMsg for FuMsg<P> {
    const KIND: u8 = 3;

    fn encode_body(&self, out: &mut Vec<u8>) {
        put_payload(out, &self.flow);
        put_payload(out, &self.estimate);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut scratch = Vec::new();
        let flow = get_payload(r, &mut scratch)?;
        let estimate = get_payload(r, &mut scratch)?;
        Ok(FuMsg { flow, estimate })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::InlineVec;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn frame<M: WireMsg>(m: &M) -> Vec<u8> {
        let mut out = Vec::new();
        m.encode_frame(&mut out);
        out
    }

    fn pcf_scalar() -> PcfMsg<f64> {
        PcfMsg {
            f1: Mass::new(1.5, 0.25),
            f2: Mass::new(-2.0, 0.5),
            c: 2,
            r: 7,
            folded: Mass::new(0.0, 0.0),
            base: Mass::new(3.0, 1.0),
            inc: 1,
        }
    }

    /// The pinned golden: this exact PCF message must produce these exact
    /// framing bytes, forever (or with a [`WIRE_VERSION`] bump). The twin
    /// harness and every backend stand on this byte-level determinism.
    #[test]
    fn pcf_scalar_frame_golden() {
        let bytes = frame(&pcf_scalar());
        let expected = concat!(
            "0102",             // version 1, kind 2 (PCF)
            "61000000",         // body length 97
            "01000000",         // f1 dim
            "000000000000f83f", // f1 value 1.5
            "000000000000d03f", // f1 weight 0.25
            "01000000",         // f2 dim
            "00000000000000c0", // f2 value -2.0
            "000000000000e03f", // f2 weight 0.5
            "01000000",         // folded dim
            "0000000000000000", // folded value 0.0
            "0000000000000000", // folded weight 0.0
            "01000000",         // base dim
            "0000000000000840", // base value 3.0
            "000000000000f03f", // base weight 1.0
            "02",               // c
            "0700000000000000", // r
            "0100000000000000", // inc
        );
        assert_eq!(hex(&bytes), expected);
        assert_eq!(bytes.len(), FRAME_HEADER + 97);
    }

    #[test]
    fn pcf_roundtrips_all_payload_types() {
        let m = pcf_scalar();
        assert_eq!(PcfMsg::<f64>::decode_frame(&frame(&m)).unwrap(), m);

        // Vector payloads, both sides of the inline cap.
        for dim in [3usize, 24] {
            let v = |k: f64| -> Vec<f64> { (0..dim).map(|i| k * i as f64 - 0.5).collect() };
            let m = PcfMsg {
                f1: Mass::new(InlineVec::from_components(&v(1.0)), 0.1),
                f2: Mass::new(InlineVec::from_components(&v(-2.0)), 0.2),
                c: 1,
                r: 9,
                folded: Mass::new(InlineVec::zeros(dim), 0.0),
                base: Mass::new(InlineVec::from_components(&v(0.25)), -0.75),
                inc: 3,
            };
            let bytes = frame(&m);
            assert_eq!(PcfMsg::<InlineVec>::decode_frame(&bytes).unwrap(), m);
            // An `InlineVec` frame is byte-identical to the `Vec<f64>`
            // frame of the same components (the wire does not know about
            // inline storage).
            let mv = PcfMsg {
                f1: Mass::new(v(1.0), 0.1),
                f2: Mass::new(v(-2.0), 0.2),
                c: 1,
                r: 9,
                folded: Mass::new(vec![0.0; dim], 0.0),
                base: Mass::new(v(0.25), -0.75),
                inc: 3,
            };
            assert_eq!(frame(&mv), bytes);
        }
    }

    #[test]
    fn mass_and_fu_roundtrip() {
        let m: Mass<f64> = Mass::new(4.25, 1.0);
        assert_eq!(Mass::<f64>::decode_frame(&frame(&m)).unwrap(), m);
        let fu: FuMsg<Vec<f64>> = FuMsg {
            flow: vec![1.0, -2.0, 3.5],
            estimate: vec![0.5, 0.5, 0.5],
        };
        assert_eq!(FuMsg::<Vec<f64>>::decode_frame(&frame(&fu)).unwrap(), fu);
    }

    #[test]
    fn nan_bits_survive_the_wire() {
        // Corrupted in-flight payloads must decode to the same bits — the
        // fault pipeline's bit flips are part of the modelled behaviour.
        let quiet = f64::from_bits(0x7ff8_0000_0000_1234);
        let m: Mass<f64> = Mass::new(quiet, f64::NEG_INFINITY);
        let back = Mass::<f64>::decode_frame(&frame(&m)).unwrap();
        assert_eq!(back.value.to_bits(), quiet.to_bits());
        assert_eq!(back.weight, f64::NEG_INFINITY);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = frame(&pcf_scalar());
        bytes[0] = WIRE_VERSION + 1;
        assert_eq!(
            PcfMsg::<f64>::decode_frame(&bytes),
            Err(WireError::Version {
                got: WIRE_VERSION + 1
            })
        );
        let e = WireError::Version { got: 9 };
        assert!(e.to_string().contains("version 9"));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let bytes = frame(&pcf_scalar());
        assert_eq!(
            Mass::<f64>::decode_frame(&bytes),
            Err(WireError::Kind { got: 2, want: 1 })
        );
    }

    #[test]
    fn truncation_and_length_mismatch_rejected() {
        let bytes = frame(&pcf_scalar());
        // Chopped mid-body: header disagrees with the bytes present.
        assert!(matches!(
            PcfMsg::<f64>::decode_frame(&bytes[..bytes.len() - 3]),
            Err(WireError::Length { .. })
        ));
        // Chopped mid-header.
        assert!(matches!(
            PcfMsg::<f64>::decode_frame(&bytes[..4]),
            Err(WireError::Truncated { .. })
        ));
        // Declared length too small: body decode runs out of bytes.
        let mut short = bytes.clone();
        short[2..6].copy_from_slice(&10u32.to_le_bytes());
        short.truncate(FRAME_HEADER + 10);
        assert!(matches!(
            PcfMsg::<f64>::decode_frame(&short),
            Err(WireError::Truncated { .. })
        ));
        // Trailing garbage behind a self-consistent header+body.
        let mut long = bytes.clone();
        long.push(0xAB);
        let declared = (long.len() - FRAME_HEADER) as u32;
        long[2..6].copy_from_slice(&declared.to_le_bytes());
        assert_eq!(
            PcfMsg::<f64>::decode_frame(&long),
            Err(WireError::Trailing { extra: 1 })
        );
    }
}
