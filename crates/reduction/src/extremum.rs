//! Extremum (min/max) gossip — the idempotent sibling of the sum family.
//!
//! Minimum and maximum are *idempotent* aggregates: combining a value
//! twice changes nothing, so the protocol needs no mass bookkeeping at
//! all — every node keeps its best-known extremum and pushes it to a
//! random neighbor each round. Loss, duplication, delay and bit flips
//! that *lower* a max (or raise a min) are all healed by re-propagation;
//! epidemic spreading gives `O(log n)` convergence on well-connected
//! topologies.
//!
//! Extrema complement the paper's sum/average reductions in practice:
//! distributed termination tests ("has every node converged?" = a global
//! AND = a min over {0,1}) and normalisation bounds (‖x‖∞) are extremum
//! reductions. The asymmetry to keep in mind: an extremum, once spread,
//! cannot be *retracted* — a crashed node's contribution survives it, and
//! a bit flip that **raises** a max is adopted and propagated as if it
//! were real data (the one soft-error class this protocol cannot heal;
//! see `bit_flip_can_poison_max` below).

use crate::aggregate::InitialData;
use crate::protocol::ReductionProtocol;
use gr_netsim::Protocol;
use gr_topology::{Graph, NodeId};

/// Which extremum to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Extremum {
    /// Global minimum.
    Min,
    /// Global maximum.
    Max,
}

/// Extremum-gossip protocol state (all nodes).
pub struct ExtremumGossip {
    kind: Extremum,
    best: Vec<f64>,
    /// Retained initial values for node restarts.
    init: Vec<f64>,
}

impl ExtremumGossip {
    /// Initialise from per-node scalar data (weights are ignored —
    /// extrema are unweighted).
    pub fn new(graph: &Graph, init: &InitialData<f64>, kind: Extremum) -> Self {
        assert_eq!(graph.len(), init.len(), "graph/init size mismatch");
        let best: Vec<f64> = (0..init.len()).map(|i| *init.value(i)).collect();
        ExtremumGossip {
            kind,
            init: best.clone(),
            best,
        }
    }

    /// The extremum this instance computes.
    pub fn kind(&self) -> Extremum {
        self.kind
    }

    #[inline]
    fn merge(&mut self, node: NodeId, candidate: f64) {
        // NaN candidates (corrupted payloads) are ignored outright.
        if candidate.is_nan() {
            return;
        }
        let slot = &mut self.best[node as usize];
        *slot = match self.kind {
            Extremum::Min => slot.min(candidate),
            Extremum::Max => slot.max(candidate),
        };
    }
}

impl Protocol for ExtremumGossip {
    type Msg = f64;

    fn on_send(&mut self, node: NodeId, _target: NodeId) -> f64 {
        self.best[node as usize]
    }

    fn on_receive(&mut self, node: NodeId, _from: NodeId, msg: &mut f64) {
        self.merge(node, *msg);
    }

    fn on_restart(&mut self, node: NodeId) {
        // Rejoin with the retained initial value; the global extremum is
        // re-adopted within a few exchanges (idempotence — no mass to
        // re-account). Note the standing asymmetry: if the crashed node
        // *held* the extremum, its pre-crash contribution survives in the
        // rest of the network and cannot be retracted.
        self.best[node as usize] = self.init[node as usize];
    }
}

impl ReductionProtocol for ExtremumGossip {
    fn node_count(&self) -> usize {
        self.best.len()
    }

    fn dim(&self) -> usize {
        1
    }

    fn write_estimate(&self, node: NodeId, out: &mut [f64]) {
        out[0] = self.best[node as usize];
    }

    fn write_mass(&self, node: NodeId, values: &mut [f64]) -> f64 {
        // Extrema have no mass semantics; report the estimate with unit
        // weight so oracle plumbing (crash references) stays meaningful.
        values[0] = self.best[node as usize];
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;
    use gr_netsim::{FaultPlan, Simulator};
    use gr_topology::{complete, hypercube, ring};

    fn data(n: usize, seed: u64) -> InitialData<f64> {
        InitialData::uniform_random(n, AggregateKind::Average, seed)
    }

    fn true_max(d: &InitialData<f64>) -> f64 {
        (0..d.len()).map(|i| *d.value(i)).fold(f64::MIN, f64::max)
    }

    #[test]
    fn max_spreads_in_logarithmic_time() {
        let g = hypercube(8); // 256 nodes
        let d = data(256, 1);
        let mx = true_max(&d);
        let mut sim = Simulator::new(
            &g,
            ExtremumGossip::new(&g, &d, Extremum::Max),
            FaultPlan::none(),
            1,
        );
        sim.run(60); // ~8·log2(256) rounds is ample
        for i in 0..256 {
            assert_eq!(sim.protocol().scalar_estimate(i), mx, "node {i}");
        }
    }

    #[test]
    fn min_on_ring_needs_diameter_rounds() {
        let g = ring(16);
        let d = data(16, 2);
        let mn = (0..16).map(|i| *d.value(i)).fold(f64::MAX, f64::min);
        let mut sim = Simulator::new(
            &g,
            ExtremumGossip::new(&g, &d, Extremum::Min),
            FaultPlan::none(),
            2,
        );
        sim.run(200);
        assert!(sim.protocol().scalar_estimates().iter().all(|&e| e == mn));
    }

    #[test]
    fn immune_to_heavy_message_loss() {
        let g = complete(32);
        let d = data(32, 3);
        let mx = true_max(&d);
        let mut sim = Simulator::new(
            &g,
            ExtremumGossip::new(&g, &d, Extremum::Max),
            FaultPlan::with_loss(0.5),
            3,
        );
        sim.run(120);
        assert!(sim.protocol().scalar_estimates().iter().all(|&e| e == mx));
    }

    #[test]
    fn crashed_nodes_contribution_survives() {
        // The holder of the max crashes after one round of spreading; the
        // value persists (extremum semantics — by design, unlike mass).
        let g = complete(8);
        let values = vec![1.0, 2.0, 3.0, 99.0, 4.0, 5.0, 6.0, 7.0];
        let d = InitialData::with_kind(values, AggregateKind::Average);
        let plan = FaultPlan::none().crash_node(3, 5);
        let mut sim = Simulator::new(&g, ExtremumGossip::new(&g, &d, Extremum::Max), plan, 4);
        sim.run(100);
        for i in sim.alive_nodes().collect::<Vec<_>>() {
            assert_eq!(sim.protocol().scalar_estimate(i), 99.0);
        }
    }

    #[test]
    fn bit_flip_can_poison_max() {
        // The documented limitation: a flip that *raises* a value is
        // indistinguishable from real data and spreads. Run with heavy
        // corruption and verify the max is (very likely) inflated.
        let g = complete(16);
        let d = data(16, 5);
        let mx = true_max(&d);
        let mut sim = Simulator::new(
            &g,
            ExtremumGossip::new(&g, &d, Extremum::Max),
            FaultPlan::with_bit_flips(0.2),
            5,
        );
        sim.run(300);
        let got = sim
            .protocol()
            .scalar_estimates()
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        assert!(got >= mx, "extrema can only grow");
        assert!(
            got > mx,
            "with ~1000 flips, inflation is certain in practice"
        );
    }

    #[test]
    fn nan_payloads_ignored() {
        let g = complete(4);
        let d = InitialData::with_kind(vec![1.0, 2.0, 3.0, 4.0], AggregateKind::Average);
        let mut p = ExtremumGossip::new(&g, &d, Extremum::Max);
        p.on_receive(0, 1, &mut f64::NAN.clone());
        assert_eq!(p.scalar_estimate(0), 1.0);
    }
}
