//! Purely local convergence detection.
//!
//! The experiment harness can stop a reduction with an oracle (it knows the
//! true aggregate to double-double precision). Real deployments cannot; a
//! node can only watch its *own* estimate. The standard criterion — also
//! what a dmGS node must use to decide a reduction is done — is stability:
//! the estimate has not moved by more than a relative tolerance over a
//! window of rounds. This is a heuristic (a slow-mixing topology can
//! plateau transiently), so the window is configurable.

use gr_topology::NodeId;

/// Sliding-window stability detector over per-node scalar estimates.
#[derive(Clone, Debug)]
pub struct LocalConvergence {
    window: usize,
    rel_tol: f64,
    /// Ring buffers, `history[node * window + k]`.
    history: Vec<f64>,
    /// Number of observations so far per node.
    seen: Vec<u64>,
}

impl LocalConvergence {
    /// A detector for `n` nodes: converged when the estimate's relative
    /// spread over the last `window` observations is at most `rel_tol`.
    ///
    /// # Panics
    /// Panics if `window < 2` or `rel_tol` is not positive.
    pub fn new(n: usize, window: usize, rel_tol: f64) -> Self {
        assert!(window >= 2, "window must cover at least 2 observations");
        assert!(rel_tol > 0.0, "tolerance must be positive");
        LocalConvergence {
            window,
            rel_tol,
            history: vec![f64::NAN; n * window],
            seen: vec![0; n],
        }
    }

    /// Record one observation of `node`'s estimate.
    pub fn observe(&mut self, node: NodeId, estimate: f64) {
        let i = node as usize;
        let slot = (self.seen[i] as usize) % self.window;
        self.history[i * self.window + slot] = estimate;
        self.seen[i] += 1;
    }

    /// `true` once `node`'s last `window` observations lie within the
    /// relative tolerance band. NaN observations (e.g. an undefined
    /// push-sum estimate) never converge.
    pub fn node_converged(&self, node: NodeId) -> bool {
        let i = node as usize;
        if self.seen[i] < self.window as u64 {
            return false;
        }
        let h = &self.history[i * self.window..(i + 1) * self.window];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in h {
            if x.is_nan() {
                return false;
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let scale = lo.abs().max(hi.abs()).max(f64::MIN_POSITIVE);
        (hi - lo) <= self.rel_tol * scale
    }

    /// `true` once every node in `nodes` is converged.
    pub fn all_converged<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> bool {
        nodes.into_iter().all(|i| self.node_converged(i))
    }

    /// Reset all history (e.g. between chained reductions).
    pub fn reset(&mut self) {
        self.history.fill(f64::NAN);
        self.seen.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_full_window() {
        let mut d = LocalConvergence::new(1, 3, 1e-12);
        d.observe(0, 1.0);
        d.observe(0, 1.0);
        assert!(!d.node_converged(0));
        d.observe(0, 1.0);
        assert!(d.node_converged(0));
    }

    #[test]
    fn moving_estimate_not_converged() {
        let mut d = LocalConvergence::new(1, 3, 1e-12);
        for k in 0..10 {
            d.observe(0, k as f64);
        }
        assert!(!d.node_converged(0));
        // then it stabilises
        for _ in 0..3 {
            d.observe(0, 10.0);
        }
        assert!(d.node_converged(0));
    }

    #[test]
    fn relative_tolerance_scales() {
        let mut d = LocalConvergence::new(1, 2, 1e-6);
        d.observe(0, 1e9);
        d.observe(0, 1e9 + 100.0); // 1e-7 relative
        assert!(d.node_converged(0));
        let mut d2 = LocalConvergence::new(1, 2, 1e-6);
        d2.observe(0, 1.0);
        d2.observe(0, 1.0 + 1e-4);
        assert!(!d2.node_converged(0));
    }

    #[test]
    fn nan_never_converges() {
        let mut d = LocalConvergence::new(1, 2, 1e-3);
        d.observe(0, f64::NAN);
        d.observe(0, f64::NAN);
        assert!(!d.node_converged(0));
    }

    #[test]
    fn all_converged_over_subset() {
        let mut d = LocalConvergence::new(3, 2, 1e-9);
        for _ in 0..2 {
            d.observe(0, 5.0);
            d.observe(2, 7.0);
        }
        // node 1 never observed
        assert!(d.all_converged([0, 2]));
        assert!(!d.all_converged([0, 1, 2]));
    }

    #[test]
    fn reset_clears_state() {
        let mut d = LocalConvergence::new(1, 2, 1e-9);
        d.observe(0, 1.0);
        d.observe(0, 1.0);
        assert!(d.node_converged(0));
        d.reset();
        assert!(!d.node_converged(0));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_window_rejected() {
        let _ = LocalConvergence::new(1, 1, 1e-9);
    }

    #[test]
    fn zero_estimates_converge() {
        // scale guard: all-zero history must not divide by zero
        let mut d = LocalConvergence::new(1, 2, 1e-9);
        d.observe(0, 0.0);
        d.observe(0, 0.0);
        assert!(d.node_converged(0));
    }
}
