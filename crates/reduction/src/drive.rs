//! Per-node protocol driver over a [`Delivery`] backend.
//!
//! The simulator drives all nodes from one loop; a real deployment has no
//! such loop — each node owns a thread (or process) and pumps its own
//! endpoint. [`NodeDriver`] is that per-node loop, factored out of any
//! particular backend: it holds one node's protocol instance and an RNG,
//! and advances the node by the paper's iteration structure (drain
//! arrivals, then push to one uniformly random neighbor) against whatever
//! [`Delivery`] implementation it is handed — the deterministic
//! [`RingDelivery`](gr_netsim::RingDelivery) twin in tests, threads or
//! sockets in `gr-transport`.
//!
//! The protocol instance is the *same type* the simulator runs (built
//! over the full graph); the driver simply only ever invokes callbacks
//! with its own node id. State for other nodes sits untouched at its
//! initial value — per-node state is independent by construction (that
//! is the point of a gossip protocol), so this costs memory proportional
//! to the graph but zero protocol forks.

use crate::protocol::ReductionProtocol;
use gr_netsim::{stream_rng, Delivery, RngStream};
use gr_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Stream tag for per-node driver RNGs ("DRV" — distinct from every
/// simulator stream, so a driver run never correlates with a netsim
/// schedule drawn from the same master seed).
const DRIVER_STREAM: u64 = 0x4452_5600;

/// Counters a driver accumulates (mirrors the simulator's
/// [`SimStats`](gr_netsim::SimStats) for the fields that exist without a
/// global round loop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Iterations executed ([`NodeDriver::step`] calls).
    pub rounds: u64,
    /// Messages pushed into the delivery layer (including replies).
    pub sent: u64,
    /// Messages drained and handed to `on_receive`.
    pub delivered: u64,
    /// Neighbors the timeout detector declared silent (possibly falsely).
    pub suspected: u64,
    /// Suspected neighbors that proved alive again and were re-admitted.
    pub rehabilitated: u64,
}

/// One node's event loop: a protocol instance plus the node identity and
/// schedule RNG needed to drive it.
pub struct NodeDriver<Pr: ReductionProtocol> {
    node: NodeId,
    proto: Pr,
    neighbors: Vec<NodeId>,
    rng: StdRng,
    stats: DriverStats,
    /// Timeout-detector silence window in own iterations (`None`: off).
    window: Option<u64>,
    /// Iteration count at the last message from each neighbor (parallel
    /// to `neighbors`; allocated only when the detector is armed).
    last_heard: Vec<u64>,
    /// Suspicion flag per neighbor (parallel to `neighbors`).
    suspected: Vec<bool>,
}

impl<Pr: ReductionProtocol> NodeDriver<Pr> {
    /// A driver for `node`, owning `proto`. The neighbor list is copied
    /// from `graph`; the partner-pick RNG derives from `seed` and the
    /// node id, so a cluster of drivers built from one seed is fully
    /// deterministic given a deterministic delivery layer.
    pub fn new(node: NodeId, proto: Pr, graph: &Graph, seed: u64) -> Self {
        NodeDriver {
            node,
            proto,
            neighbors: graph.neighbors(node).to_vec(),
            rng: stream_rng(seed, RngStream::Aux(DRIVER_STREAM ^ u64::from(node))),
            stats: DriverStats::default(),
            window: None,
            last_heard: Vec::new(),
            suspected: Vec::new(),
        }
    }

    /// Arm a genuine (non-oracle) timeout failure detector: a neighbor
    /// that stays silent for more than `window` of this driver's *own*
    /// iterations is suspected — [`Protocol::on_suspect`] runs (flow
    /// protocols excise the edge and bump its incarnation) but the
    /// neighbor **stays in the send rotation**. Keeping it addressed is
    /// what makes the detector safe: a suspect that was merely slow — or
    /// has restarted with fresh state — keeps receiving our messages
    /// (which carry the bumped incarnation it must adopt), and the first
    /// message it sends back rehabilitates it via
    /// [`Protocol::on_rehabilitate`].
    ///
    /// # Panics
    /// Panics if `window == 0` (every neighbor would be suspected before
    /// its first message could arrive).
    #[must_use]
    pub fn with_timeout_detector(mut self, window: u64) -> Self {
        assert!(window > 0, "detector window must be positive");
        self.window = Some(window);
        self.last_heard = vec![0; self.neighbors.len()];
        self.suspected = vec![false; self.neighbors.len()];
        self
    }

    /// `true` if the timeout detector currently suspects `neighbor`.
    /// Always `false` when no detector is armed or `neighbor` is not
    /// adjacent.
    pub fn suspects(&self, neighbor: NodeId) -> bool {
        self.window.is_some()
            && self
                .neighbors
                .iter()
                .position(|&n| n == neighbor)
                .is_some_and(|slot| self.suspected[slot])
    }

    /// The node this driver animates.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Counters so far.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// The protocol instance (estimates are read through this).
    pub fn protocol(&self) -> &Pr {
        &self.proto
    }

    /// Mutable protocol access (fault notifications, test setup).
    pub fn protocol_mut(&mut self) -> &mut Pr {
        &mut self.proto
    }

    /// Drain every message currently deliverable to this node: each one
    /// runs `on_receive`, then any protocol-level `reply` is pushed back
    /// toward the sender, then the gutted buffer is returned to the
    /// protocol's wire pool via `reclaim`. Returns the number of messages
    /// processed.
    pub fn pump<D: Delivery<Pr::Msg>>(&mut self, delivery: &mut D) -> Result<usize, D::Error> {
        let mut n = 0;
        while let Some((from, mut msg)) = delivery.try_recv(self.node)? {
            self.proto.prewarm(self.node, from);
            self.proto.on_receive(self.node, from, &mut msg);
            self.proto.reclaim(msg);
            if self.window.is_some() {
                self.heard_from(from);
            }
            if let Some(reply) = self.proto.reply(self.node, from) {
                delivery.send(self.node, from, reply)?;
                self.stats.sent += 1;
            }
            n += 1;
        }
        self.stats.delivered += n as u64;
        Ok(n)
    }

    /// Detector bookkeeping for one arrival: refresh the silence clock
    /// and rehabilitate the sender if it was under suspicion. Runs
    /// *after* `on_receive`, so a flow protocol has already processed
    /// any incarnation resync the message carried.
    fn heard_from(&mut self, from: NodeId) {
        if let Some(slot) = self.neighbors.iter().position(|&n| n == from) {
            self.last_heard[slot] = self.stats.rounds;
            if self.suspected[slot] {
                self.suspected[slot] = false;
                self.stats.rehabilitated += 1;
                self.proto.on_rehabilitate(self.node, from);
            }
        }
    }

    /// One iteration of the paper's execution model for this node: drain
    /// arrivals, then push one message to a uniformly random neighbor.
    /// Nodes with no neighbors only pump.
    pub fn step<D: Delivery<Pr::Msg>>(&mut self, delivery: &mut D) -> Result<(), D::Error> {
        self.pump(delivery)?;
        if !self.neighbors.is_empty() {
            let target = self.neighbors[self.rng.random_range(0..self.neighbors.len())];
            let msg = self.proto.on_send(self.node, target);
            delivery.send(self.node, target, msg)?;
            self.stats.sent += 1;
        }
        self.stats.rounds += 1;
        if let Some(window) = self.window {
            for slot in 0..self.neighbors.len() {
                if !self.suspected[slot] && self.stats.rounds - self.last_heard[slot] > window {
                    self.suspected[slot] = true;
                    self.stats.suspected += 1;
                    self.proto.on_suspect(self.node, self.neighbors[slot]);
                }
            }
        }
        Ok(())
    }

    /// This node's current estimate, componentwise.
    pub fn write_estimate(&self, out: &mut [f64]) {
        self.proto.write_estimate(self.node, out);
    }

    /// This node's current mass (written into `values`, weight returned).
    pub fn write_mass(&self, values: &mut [f64]) -> f64 {
        self.proto.write_mass(self.node, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggregateKind, InitialData};
    use crate::push_cancel_flow::PushCancelFlow;
    use gr_netsim::RingDelivery;
    use gr_topology::hypercube;

    /// N independent drivers over the shared deterministic loopback ring
    /// converge to the true average — the single-threaded prototype of the
    /// threaded/socket clusters in `gr-transport`.
    fn drive_once(seed: u64) -> Vec<f64> {
        let graph = hypercube(4);
        let n = graph.len();
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let data = InitialData::with_kind(values, AggregateKind::Average);
        let mut ring: RingDelivery<_> = RingDelivery::new(0);
        let mut drivers: Vec<_> = (0..n as NodeId)
            .map(|i| NodeDriver::new(i, PushCancelFlow::new(&graph, &data), &graph, seed))
            .collect();
        for _ in 0..200 {
            for d in drivers.iter_mut() {
                d.step(&mut ring).unwrap();
            }
            ring.advance_round();
        }
        // Final drain so late messages are not left in flight.
        for d in drivers.iter_mut() {
            d.pump(&mut ring).unwrap();
        }
        let mut est = vec![0.0];
        drivers
            .iter()
            .map(|d| {
                d.write_estimate(&mut est);
                est[0]
            })
            .collect()
    }

    #[test]
    fn drivers_over_loopback_converge_to_average() {
        let estimates = drive_once(42);
        let target = 7.5; // mean of 0..16
        for (i, e) in estimates.iter().enumerate() {
            assert!(
                (e - target).abs() < 1e-9,
                "node {i} estimate {e} not at {target}"
            );
        }
    }

    #[test]
    fn driver_runs_are_deterministic() {
        assert_eq!(drive_once(7), drive_once(7));
        assert_ne!(drive_once(7), drive_once(8));
    }

    #[test]
    fn mass_is_conserved_across_instances() {
        let graph = hypercube(3);
        let n = graph.len();
        let values: Vec<f64> = (0..n).map(|i| 3.0 * i as f64 - 2.0).collect();
        let total: f64 = values.iter().sum();
        let data = InitialData::with_kind(values, AggregateKind::Average);
        let mut ring: RingDelivery<_> = RingDelivery::new(0);
        let mut drivers: Vec<_> = (0..n as NodeId)
            .map(|i| NodeDriver::new(i, PushCancelFlow::new(&graph, &data), &graph, 5))
            .collect();
        for _ in 0..37 {
            for d in drivers.iter_mut() {
                d.step(&mut ring).unwrap();
            }
            ring.advance_round();
        }
        // Quiesce: drain until no driver delivers anything more.
        loop {
            let mut moved = 0;
            for d in drivers.iter_mut() {
                moved += d.pump(&mut ring).unwrap();
            }
            if moved == 0 {
                break;
            }
        }
        let mut buf = vec![0.0];
        let (mut mass, mut weight) = (0.0, 0.0);
        for d in drivers.iter() {
            weight += d.write_mass(&mut buf);
            mass += buf[0];
        }
        assert!(
            (mass - total).abs() < 1e-9 * total.abs().max(1.0),
            "mass {mass} drifted from {total}"
        );
        assert!((weight - n as f64).abs() < 1e-9);
    }

    /// A false suspicion (the neighbor was merely paused) must be raised
    /// after the silence window, cleared on the next arrival, and leave
    /// the aggregate intact — the excise/bump + wire-resync path at work
    /// without any oracle.
    #[test]
    fn timeout_detector_suspects_and_rehabilitates() {
        let graph = gr_topology::bus(2);
        let values = vec![10.0, -4.0];
        let total: f64 = values.iter().sum();
        let data = InitialData::with_kind(values, AggregateKind::Average);
        let mut ring: RingDelivery<_> = RingDelivery::new(0);
        let mut drivers: Vec<_> = (0..2)
            .map(|i| {
                NodeDriver::new(i, PushCancelFlow::new(&graph, &data), &graph, 11)
                    .with_timeout_detector(4)
            })
            .collect();
        // Warm up with both sides live: no suspicion.
        for _ in 0..6 {
            for d in drivers.iter_mut() {
                d.step(&mut ring).unwrap();
            }
            ring.advance_round();
        }
        assert!(!drivers[0].suspects(1));
        // Pause node 1 past node 0's window.
        for _ in 0..7 {
            drivers[0].step(&mut ring).unwrap();
            ring.advance_round();
        }
        assert!(drivers[0].suspects(1));
        assert_eq!(drivers[0].stats().suspected, 1);
        // Resume node 1: its backlog drains, node 0 hears from it again.
        for _ in 0..40 {
            for d in drivers.iter_mut() {
                d.step(&mut ring).unwrap();
            }
            ring.advance_round();
        }
        loop {
            let mut moved = 0;
            for d in drivers.iter_mut() {
                moved += d.pump(&mut ring).unwrap();
            }
            if moved == 0 {
                break;
            }
        }
        assert!(!drivers[0].suspects(1));
        assert_eq!(drivers[0].stats().rehabilitated, 1);
        // The false alarm conserved mass and did not wreck convergence.
        let mut buf = vec![0.0];
        let (mut mass, mut weight) = (0.0, 0.0);
        for d in drivers.iter() {
            weight += d.write_mass(&mut buf);
            mass += buf[0];
        }
        assert!(
            (mass - total).abs() < 1e-9,
            "mass {mass} drifted from {total} after false suspicion"
        );
        assert!((weight - 2.0).abs() < 1e-9);
        for d in drivers.iter() {
            d.write_estimate(&mut buf);
            assert!(
                (buf[0] - total / 2.0).abs() < 1e-6,
                "node {} estimate {} after rehabilitation",
                d.node(),
                buf[0]
            );
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_detector_window_rejected() {
        let graph = gr_topology::bus(2);
        let data = InitialData::with_kind(vec![0.0, 0.0], AggregateKind::Average);
        let _ = NodeDriver::new(0, PushCancelFlow::new(&graph, &data), &graph, 0)
            .with_timeout_detector(0);
    }
}
