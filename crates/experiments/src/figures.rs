//! Experiment implementations, one per paper figure plus ablations.
//!
//! Each function returns a [`Table`]; the `bin/` wrappers parse options,
//! call these, and emit results. Keeping the logic here makes every
//! experiment callable from integration tests and benches.

use crate::output::{fmt_err, Table};
use crate::parallel::par_map;
use gr_netsim::{Activation, DelayModel, FaultPlan, Schedule, SimOptions, Simulator};
use gr_reduction::{
    measure_error, run_reduction, run_with_options, AggregateKind, Algorithm, ErrorSample,
    FlowUpdating, InitialData, PhiMode, PushCancelFlow, PushFlow, PushSum, ReductionProtocol,
    RunConfig,
};
use gr_topology::{hypercube, torus3d, Graph};
use serde::Serialize;

/// Build the `i`-th evaluation topology of Figs. 3/6: a `2^i × 2^i × 2^i`
/// torus (`8^i` nodes). The `i = 1` case (2×2×2) *is* the 3-cube — a
/// 2-torus direction collapses its two parallel edges — so it is built as
/// `hypercube(3)`.
pub fn torus_of_exp(i: u32) -> Graph {
    let side = 1usize << i;
    if side < 3 {
        hypercube(3)
    } else {
        torus3d(side, side, side)
    }
}

/// Options shared by the Fig. 3 / Fig. 6 accuracy sweeps.
#[derive(Clone, Copy, Debug)]
pub struct AccuracySweepOpts {
    /// Largest size exponent `i` (node counts `8^1 … 8^i`; the paper uses
    /// `i = 5`, i.e. up to 32768 nodes).
    pub max_exp: u32,
    /// Oracle target accuracy (paper: 1e-15).
    pub target: f64,
    /// Stop when the best error stops improving for this many rounds.
    pub plateau: u64,
    /// Hard per-run round cap.
    pub max_rounds: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the sweep.
    pub threads: usize,
}

impl Default for AccuracySweepOpts {
    fn default() -> Self {
        AccuracySweepOpts {
            max_exp: 4,
            target: 1e-15,
            plateau: 4000,
            max_rounds: 200_000,
            seed: 42,
            threads: crate::parallel::default_threads(),
        }
    }
}

#[derive(Serialize)]
struct AccuracyRow {
    topology: &'static str,
    aggregate: &'static str,
    nodes: usize,
    best_max_err: f64,
    final_max_err: f64,
    rounds: u64,
    converged: bool,
}

/// Figs. 3 and 6: globally achievable accuracy vs. system size, on 3D
/// torus and hypercube, for SUM and AVG, for the given algorithm (PF
/// reproduces Fig. 3, PCF Fig. 6).
pub fn accuracy_sweep(name: &str, algorithm: Algorithm, opts: &AccuracySweepOpts) -> Table {
    #[derive(Clone, Copy)]
    struct Job {
        exp: u32,
        topo: &'static str,
        kind: AggregateKind,
    }
    let mut jobs = Vec::new();
    for exp in 1..=opts.max_exp {
        for topo in ["torus3d", "hypercube"] {
            for kind in [AggregateKind::Average, AggregateKind::Sum] {
                jobs.push(Job { exp, topo, kind });
            }
        }
    }
    let o = *opts;
    let rows = par_map(jobs, opts.threads, move |job| {
        let n = 8usize.pow(job.exp);
        let graph = match job.topo {
            "torus3d" => torus_of_exp(job.exp),
            _ => hypercube(3 * job.exp),
        };
        let data = InitialData::uniform_random(n, job.kind, o.seed ^ (job.exp as u64) << 8);
        let cfg = RunConfig {
            target_accuracy: Some(o.target),
            max_rounds: o.max_rounds,
            record_every: 0,
            plateau_window: Some(o.plateau),
        };
        let r = run_reduction(algorithm, &graph, &data, FaultPlan::none(), o.seed, cfg);
        AccuracyRow {
            topology: job.topo,
            aggregate: job.kind.label(),
            nodes: n,
            best_max_err: r.best_max_err,
            final_max_err: r.final_err.max,
            rounds: r.rounds,
            converged: r.converged,
        }
    });

    let mut t = Table::new(
        name,
        &[
            "topology",
            "aggregate",
            "nodes",
            "best max err",
            "rounds",
            "reached 1e-15",
        ],
    );
    for row in rows {
        t.push(
            vec![
                row.topology.into(),
                row.aggregate.into(),
                row.nodes.to_string(),
                fmt_err(row.best_max_err),
                row.rounds.to_string(),
                row.converged.to_string(),
            ],
            &row,
        );
    }
    t
}

/// Options for the Fig. 4 / Fig. 7 single-link-failure trajectories.
#[derive(Clone, Copy, Debug)]
pub struct FailureTrajOpts {
    /// Hypercube dimension (paper: 6 → 64 nodes).
    pub cube_dim: u32,
    /// Iterations to simulate (paper: 200).
    pub rounds: u64,
    /// Master seed (same for PF and PCF, as in the paper).
    pub seed: u64,
}

impl Default for FailureTrajOpts {
    fn default() -> Self {
        FailureTrajOpts {
            cube_dim: 6,
            rounds: 200,
            seed: 7,
        }
    }
}

/// Run one algorithm's error trajectory with a single permanent link
/// failure handled at `fail_at` (paper Figs. 4/7; `fail_at = None` gives
/// the failure-free baseline).
pub fn failure_trajectory(
    algorithm: Algorithm,
    opts: &FailureTrajOpts,
    fail_at: Option<u64>,
) -> Vec<ErrorSample> {
    let n = 1usize << opts.cube_dim;
    let graph = hypercube(opts.cube_dim);
    let data = InitialData::uniform_random(n, AggregateKind::Average, opts.seed ^ 0xACC);
    let plan = match fail_at {
        Some(t) => FaultPlan::none().fail_link(0, 1, t),
        None => FaultPlan::none(),
    };
    let cfg = RunConfig::fixed(opts.rounds, 1);
    let r = run_reduction(algorithm, &graph, &data, plan, opts.seed, cfg);
    r.series
}

#[derive(Serialize)]
struct TrajRow {
    round: u64,
    pf_max: f64,
    pf_median: f64,
    pcf_max: f64,
    pcf_median: f64,
}

/// Figs. 4 and 7 combined: PF and PCF error trajectories under a link
/// failure handled at round `fail_at`, same seed, one row per iteration.
pub fn failure_figure(name: &str, opts: &FailureTrajOpts, fail_at: u64) -> Table {
    let pf = failure_trajectory(Algorithm::PushFlow, opts, Some(fail_at));
    let pcf = failure_trajectory(
        Algorithm::PushCancelFlow(PhiMode::Eager),
        opts,
        Some(fail_at),
    );
    assert_eq!(pf.len(), pcf.len());
    let mut t = Table::new(
        name,
        &["round", "PF max", "PF median", "PCF max", "PCF median"],
    );
    for (a, b) in pf.iter().zip(&pcf) {
        debug_assert_eq!(a.round, b.round);
        let row = TrajRow {
            round: a.round,
            pf_max: a.max,
            pf_median: a.median,
            pcf_max: b.max,
            pcf_median: b.median,
        };
        t.push(
            vec![
                row.round.to_string(),
                fmt_err(row.pf_max),
                fmt_err(row.pf_median),
                fmt_err(row.pcf_max),
                fmt_err(row.pcf_median),
            ],
            &row,
        );
    }
    t
}

/// Options for the Fig. 8 dmGS sweep.
#[derive(Clone, Copy, Debug)]
pub struct DmgsSweepOpts {
    /// Smallest node-count exponent (paper: 5 → 32 nodes).
    pub min_exp: u32,
    /// Largest node-count exponent (paper: 10 → 1024 nodes).
    pub max_exp: u32,
    /// Columns of V (paper: 16).
    pub m: usize,
    /// Repetitions averaged per point (paper: 50).
    pub runs: u32,
    /// Per-reduction round cap.
    pub max_rounds_per_reduction: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for DmgsSweepOpts {
    fn default() -> Self {
        DmgsSweepOpts {
            min_exp: 5,
            max_exp: 8,
            m: 16,
            runs: 5,
            max_rounds_per_reduction: 3000,
            seed: 1234,
            threads: crate::parallel::default_threads(),
        }
    }
}

#[derive(Serialize)]
struct DmgsRow {
    algorithm: &'static str,
    nodes: usize,
    mean_fact_err: f64,
    mean_orth_err: f64,
    mean_consistency_err: f64,
    mean_rounds: f64,
    runs: u32,
}

/// Fig. 8: dmGS(PF) vs dmGS(PCF) factorization error over hypercube sizes,
/// averaged over `runs` random matrices.
pub fn dmgs_sweep(name: &str, opts: &DmgsSweepOpts) -> Table {
    use gr_dmgs::{dmgs, DmgsConfig};
    #[derive(Clone, Copy)]
    struct Job {
        alg: Algorithm,
        exp: u32,
        run: u32,
    }
    let algs = [
        Algorithm::PushFlow,
        Algorithm::PushCancelFlow(PhiMode::Eager),
    ];
    let mut jobs = Vec::new();
    for &alg in &algs {
        for exp in opts.min_exp..=opts.max_exp {
            for run in 0..opts.runs {
                jobs.push(Job { alg, exp, run });
            }
        }
    }
    let o = *opts;
    let results = par_map(jobs, opts.threads, move |job| {
        let n = 1usize << job.exp;
        let graph = hypercube(job.exp);
        let v = gr_linalg::Matrix::random_uniform(
            n,
            o.m,
            o.seed ^ ((job.run as u64) << 20) ^ job.exp as u64,
        );
        let mut cfg =
            DmgsConfig::paper(job.alg, o.seed ^ ((job.run as u64) << 40) ^ job.exp as u64);
        cfg.max_rounds_per_reduction = o.max_rounds_per_reduction;
        let r = dmgs(&v, &graph, &cfg);
        (
            job,
            r.factorization_error,
            r.orthogonality_error,
            r.consistency_error,
            r.total_rounds,
        )
    });

    let mut t = Table::new(
        name,
        &[
            "algorithm",
            "nodes",
            "mean ‖V−QR‖∞/‖V‖∞",
            "mean ‖I−QᵀQ‖∞",
            "mean consistency",
            "mean rounds",
        ],
    );
    for &alg in &algs {
        for exp in opts.min_exp..=opts.max_exp {
            let group: Vec<_> = results
                .iter()
                .filter(|(j, ..)| j.alg == alg && j.exp == exp)
                .collect();
            let k = group.len() as f64;
            let fact = group.iter().map(|x| x.1).sum::<f64>() / k;
            let orth = group.iter().map(|x| x.2).sum::<f64>() / k;
            let cons = group.iter().map(|x| x.3).sum::<f64>() / k;
            let rounds = group.iter().map(|x| x.4 as f64).sum::<f64>() / k;
            let row = DmgsRow {
                algorithm: match alg {
                    Algorithm::PushFlow => "dmGS(PF)",
                    _ => "dmGS(PCF)",
                },
                nodes: 1usize << exp,
                mean_fact_err: fact,
                mean_orth_err: orth,
                mean_consistency_err: cons,
                mean_rounds: rounds,
                runs: opts.runs,
            };
            t.push(
                vec![
                    row.algorithm.into(),
                    row.nodes.to_string(),
                    fmt_err(fact),
                    fmt_err(orth),
                    fmt_err(cons),
                    format!("{rounds:.0}"),
                ],
                &row,
            );
        }
    }
    t
}

#[derive(Serialize)]
struct BusRow {
    edge: String,
    pf_flow: f64,
    schematic: f64,
    pcf_flow_magnitude: f64,
    pf_estimate: f64,
}

/// Fig. 2, executable: the bus-network worked example. Runs PF (and PCF
/// for contrast) on the `v₁ = n+1, vᵢ = 1` bus case with the regular
/// round-robin schedule and reports flows against the schematic values
/// `f_{i−1,i} = n−i+1`.
pub fn bus_example(name: &str, n: usize, rounds: u64, seed: u64) -> Table {
    let graph = gr_topology::bus(n);
    let data = InitialData::bus_case(n);

    let mut pf_sim = Simulator::with_schedule(
        &graph,
        PushFlow::new(&graph, &data),
        FaultPlan::none(),
        seed,
        Schedule::round_robin(n),
    );
    pf_sim.run(rounds);
    let mut pcf_sim = Simulator::with_schedule(
        &graph,
        PushCancelFlow::new(&graph, &data),
        FaultPlan::none(),
        seed,
        Schedule::round_robin(n),
    );
    pcf_sim.run(rounds);

    let mut t = Table::new(
        name,
        &[
            "edge (i−1,i)",
            "PF flow value",
            "schematic n−i+1",
            "PCF max |flow|",
            "PF estimate at i−1",
        ],
    );
    for i in 2..=n {
        let (a, b) = ((i - 2) as u32, (i - 1) as u32);
        let pf = pf_sim.protocol();
        let pcf = pcf_sim.protocol();
        let pcf_mag = pcf
            .flow(a, b, 1)
            .value
            .abs()
            .max(pcf.flow(a, b, 2).value.abs());
        let row = BusRow {
            edge: format!("({},{})", i - 1, i),
            pf_flow: pf.flow(a, b).value,
            schematic: (n - i + 1) as f64,
            pcf_flow_magnitude: pcf_mag,
            pf_estimate: pf.scalar_estimate(a),
        };
        t.push(
            vec![
                row.edge.clone(),
                format!("{:.3}", row.pf_flow),
                format!("{:.0}", row.schematic),
                format!("{:.3}", row.pcf_flow_magnitude),
                format!("{:.12}", row.pf_estimate),
            ],
            &row,
        );
    }
    t
}

#[derive(Serialize)]
struct LossRow {
    algorithm: &'static str,
    loss_prob: f64,
    best_max_err: f64,
    rounds: u64,
    converged: bool,
}

/// Ablation A2: best achievable accuracy under probabilistic message loss
/// for every algorithm (push-sum's bias vs the flow algorithms' immunity).
pub fn message_loss_ablation(name: &str, cube_dim: u32, seed: u64, threads: usize) -> Table {
    let losses = [0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5];
    let algs = [
        Algorithm::PushSum,
        Algorithm::PushFlow,
        Algorithm::PushCancelFlow(PhiMode::Eager),
        Algorithm::FlowUpdating,
    ];
    let mut jobs = Vec::new();
    for &alg in &algs {
        for &p in &losses {
            jobs.push((alg, p));
        }
    }
    let n = 1usize << cube_dim;
    let rows = par_map(jobs, threads, move |(alg, p)| {
        let graph = hypercube(cube_dim);
        let data = InitialData::uniform_random(n, AggregateKind::Average, seed ^ 0x105);
        let cfg = RunConfig {
            target_accuracy: Some(1e-14),
            max_rounds: 60_000,
            record_every: 0,
            plateau_window: Some(3000),
        };
        let r = run_reduction(alg, &graph, &data, FaultPlan::with_loss(p), seed, cfg);
        LossRow {
            algorithm: alg.label(),
            loss_prob: p,
            best_max_err: r.best_max_err,
            rounds: r.rounds,
            converged: r.converged,
        }
    });
    let mut t = Table::new(
        name,
        &[
            "algorithm",
            "loss prob",
            "best max err",
            "rounds",
            "reached 1e-14",
        ],
    );
    for row in rows {
        t.push(
            vec![
                row.algorithm.into(),
                format!("{}", row.loss_prob),
                fmt_err(row.best_max_err),
                row.rounds.to_string(),
                row.converged.to_string(),
            ],
            &row,
        );
    }
    t
}

#[derive(Serialize)]
struct FlipRow {
    algorithm: String,
    flip_prob: f64,
    err_after_episode: f64,
    err_after_recovery: f64,
    bit_flips_injected: u64,
}

/// Generic two-phase run: `episode_rounds` with per-message bit-flip
/// probability `p`, then `recovery_rounds` failure-free; returns the max
/// error at the end of each phase plus the number of flips injected.
fn bit_flip_episode<Pr: ReductionProtocol>(
    graph: &Graph,
    protocol: Pr,
    data: &InitialData<f64>,
    p: f64,
    episode_rounds: u64,
    recovery_rounds: u64,
    seed: u64,
) -> (f64, f64, u64) {
    let refs = data.reference();
    let mut sim = Simulator::new(graph, protocol, FaultPlan::with_bit_flips(p), seed);
    sim.run(episode_rounds);
    let mid = measure_error(sim.protocol(), &refs, sim.alive_nodes(), sim.round()).max;
    sim.set_fault_plan(FaultPlan::none());
    sim.run(recovery_rounds);
    let fin = measure_error(sim.protocol(), &refs, sim.alive_nodes(), sim.round()).max;
    (mid, fin, sim.stats().bit_flips)
}

/// Ablation A1: bit-flip episodes against PF, PCF-eager and PCF-hardened.
/// The paper's claim under test: Fig. 5 as printed ("eager") is *not*
/// fully bit-flip tolerant, the hardened ϕ variant is; PF recovers in
/// theory but high-exponent flips destroy its precision in f64.
pub fn bit_flip_ablation(name: &str, cube_dim: u32, seed: u64, threads: usize) -> Table {
    let probs = [0.0005, 0.005, 0.02];
    // Variants 0..2 are the paper-facing algorithms; 3 and 4 add the
    // magnitude guard (our extension): implausibly large received flows
    // are rejected as corrupted, closing the exponent-flip hole.
    let variants: Vec<String> = vec![
        "PF".into(),
        "PCF".into(),
        "PCF-hardened".into(),
        "PF-guarded".into(),
        "PCF-guarded".into(),
    ];
    let mut jobs = Vec::new();
    for label in &variants {
        for &p in &probs {
            jobs.push((label.clone(), p));
        }
    }
    let n = 1usize << cube_dim;
    let rows = par_map(jobs, threads, move |(label, p)| {
        let graph = hypercube(cube_dim);
        let data = InitialData::uniform_random(n, AggregateKind::Average, seed ^ 0xF11);
        let guard_bound = 1e6; // data is O(1); flows are O(n) at most
        let (mid, fin, flips) = match label.as_str() {
            "PF" => bit_flip_episode(
                &graph,
                PushFlow::new(&graph, &data),
                &data,
                p,
                300,
                1500,
                seed,
            ),
            "PCF" => bit_flip_episode(
                &graph,
                PushCancelFlow::with_mode(&graph, &data, PhiMode::Eager),
                &data,
                p,
                300,
                1500,
                seed,
            ),
            "PCF-hardened" => bit_flip_episode(
                &graph,
                PushCancelFlow::with_mode(&graph, &data, PhiMode::Hardened),
                &data,
                p,
                300,
                1500,
                seed,
            ),
            "PF-guarded" => bit_flip_episode(
                &graph,
                PushFlow::new(&graph, &data).with_guard(guard_bound),
                &data,
                p,
                300,
                1500,
                seed,
            ),
            "PCF-guarded" => bit_flip_episode(
                &graph,
                PushCancelFlow::with_mode(&graph, &data, PhiMode::Hardened).with_guard(guard_bound),
                &data,
                p,
                300,
                1500,
                seed,
            ),
            _ => unreachable!(),
        };
        FlipRow {
            algorithm: label,
            flip_prob: p,
            err_after_episode: mid,
            err_after_recovery: fin,
            bit_flips_injected: flips,
        }
    });
    let mut t = Table::new(
        name,
        &[
            "algorithm",
            "flip prob",
            "err after episode",
            "err after recovery",
            "flips injected",
        ],
    );
    for row in rows {
        t.push(
            vec![
                row.algorithm.clone(),
                format!("{}", row.flip_prob),
                fmt_err(row.err_after_episode),
                fmt_err(row.err_after_recovery),
                row.bit_flips_injected.to_string(),
            ],
            &row,
        );
    }
    t
}

#[derive(Serialize)]
struct CrashRow {
    algorithm: &'static str,
    crash_round: u64,
    final_max_err: f64,
    rounds: u64,
    converged: bool,
}

/// Ablation A3: a node crash mid-run; survivors must re-converge to the
/// survivors' aggregate (oracle-recomputed from remaining mass).
pub fn node_crash_ablation(name: &str, cube_dim: u32, seed: u64, threads: usize) -> Table {
    let crash_rounds = [50u64, 150];
    let algs = [
        Algorithm::PushFlow,
        Algorithm::PushCancelFlow(PhiMode::Eager),
    ];
    let mut jobs = Vec::new();
    for &alg in &algs {
        for &t0 in &crash_rounds {
            jobs.push((alg, t0));
        }
    }
    let n = 1usize << cube_dim;
    let rows = par_map(jobs, threads, move |(alg, t0)| {
        let graph = hypercube(cube_dim);
        let data = InitialData::uniform_random(n, AggregateKind::Average, seed ^ 0xC4A5);
        let plan = FaultPlan::none().crash_node((n / 2) as u32, t0);
        let cfg = RunConfig::to_accuracy(1e-13, 60_000);
        let r = run_reduction(alg, &graph, &data, plan, seed, cfg);
        CrashRow {
            algorithm: alg.label(),
            crash_round: t0,
            final_max_err: r.final_err.max,
            rounds: r.rounds,
            converged: r.converged,
        }
    });
    let mut t = Table::new(
        name,
        &[
            "algorithm",
            "crash round",
            "final max err",
            "rounds",
            "reconverged",
        ],
    );
    for row in rows {
        t.push(
            vec![
                row.algorithm.into(),
                row.crash_round.to_string(),
                fmt_err(row.final_max_err),
                row.rounds.to_string(),
                row.converged.to_string(),
            ],
            &row,
        );
    }
    t
}

#[derive(Serialize)]
struct ExecModelRow {
    algorithm: &'static str,
    model: String,
    rounds_to_target: u64,
    best_max_err: f64,
    converged: bool,
}

/// Ablation A4: execution models — synchronous rounds (the paper's model)
/// vs asynchronous single-node activation vs delayed delivery. All
/// protocols must converge under all models; the interesting output is
/// the round cost of each relaxation.
pub fn execution_model_ablation(name: &str, cube_dim: u32, seed: u64, threads: usize) -> Table {
    let models: Vec<(String, SimOptions)> = vec![
        ("synchronous".into(), SimOptions::default()),
        (
            "asynchronous".into(),
            SimOptions {
                activation: Activation::Asynchronous,
                ..SimOptions::default()
            },
        ),
        (
            "delay fixed 2".into(),
            SimOptions {
                delay: DelayModel::Fixed(2),
                ..SimOptions::default()
            },
        ),
        (
            "delay U(0,4)".into(),
            SimOptions {
                delay: DelayModel::Uniform { min: 0, max: 4 },
                ..SimOptions::default()
            },
        ),
    ];
    let algs = [
        Algorithm::PushFlow,
        Algorithm::PushCancelFlow(PhiMode::Eager),
        Algorithm::FlowUpdating,
    ];
    let mut jobs = Vec::new();
    for &alg in &algs {
        for (label, o) in &models {
            jobs.push((alg, label.clone(), o.clone()));
        }
    }
    let n = 1usize << cube_dim;
    let rows = par_map(jobs, threads, move |(alg, label, o)| {
        let graph = hypercube(cube_dim);
        let data = InitialData::uniform_random(n, AggregateKind::Average, seed ^ 0xE8EC);
        let cfg = RunConfig::to_accuracy(1e-12, 100_000);
        let r = match alg {
            Algorithm::PushFlow => run_with_options(
                &graph,
                PushFlow::new(&graph, &data),
                &data,
                FaultPlan::none(),
                seed,
                cfg,
                o,
            ),
            Algorithm::PushCancelFlow(mode) => run_with_options(
                &graph,
                PushCancelFlow::with_mode(&graph, &data, mode),
                &data,
                FaultPlan::none(),
                seed,
                cfg,
                o,
            ),
            Algorithm::FlowUpdating => run_with_options(
                &graph,
                FlowUpdating::new(&graph, &data),
                &data,
                FaultPlan::none(),
                seed,
                cfg,
                o,
            ),
            Algorithm::PushSum => run_with_options(
                &graph,
                PushSum::new(&graph, &data),
                &data,
                FaultPlan::none(),
                seed,
                cfg,
                o,
            ),
        };
        ExecModelRow {
            algorithm: alg.label(),
            model: label,
            rounds_to_target: r.rounds,
            best_max_err: r.best_max_err,
            converged: r.converged,
        }
    });
    let mut t = Table::new(
        name,
        &[
            "algorithm",
            "execution model",
            "rounds to 1e-12",
            "best max err",
            "converged",
        ],
    );
    for row in rows {
        t.push(
            vec![
                row.algorithm.into(),
                row.model.clone(),
                row.rounds_to_target.to_string(),
                fmt_err(row.best_max_err),
                row.converged.to_string(),
            ],
            &row,
        );
    }
    t
}

#[derive(Serialize)]
struct CompPfRow {
    algorithm: &'static str,
    nodes: usize,
    best_max_err: f64,
    rounds: u64,
}

/// Ablation A5: does compensated summation rescue push-flow?
///
/// Tests the paper's Sec. II-B remark that storing the sum of flows more
/// carefully cannot fix PF: the *write-side* rounding — `f += e/2` rounds
/// at `ε·|f|` with `|f| = O(n·aggregate)` — is baked into the flow values
/// themselves. Expected shape: compensated PF improves on plain PF by a
/// modest constant (the read-side cancellation is gone) but keeps the
/// same growth-with-n, far above PCF (which keeps `|f| = O(aggregate)` so
/// *both* error sources vanish).
pub fn compensated_pf_ablation(name: &str, max_exp: u32, seed: u64, threads: usize) -> Table {
    let mut jobs = Vec::new();
    for exp in 1..=max_exp {
        for alg in ["PF", "PF-compensated", "PCF"] {
            jobs.push((exp, alg));
        }
    }
    let rows = par_map(jobs, threads, move |(exp, alg)| {
        let n = 8usize.pow(exp);
        let graph = torus_of_exp(exp);
        let data = InitialData::uniform_random(n, AggregateKind::Sum, seed ^ (exp as u64) << 8);
        let cfg = RunConfig {
            target_accuracy: Some(1e-15),
            max_rounds: 200_000,
            record_every: 0,
            plateau_window: Some(4000),
        };
        let r = match alg {
            "PF" => gr_reduction::run_with_protocol(
                &graph,
                PushFlow::new(&graph, &data),
                &data,
                FaultPlan::none(),
                seed,
                cfg,
            ),
            "PF-compensated" => gr_reduction::run_with_protocol(
                &graph,
                PushFlow::new(&graph, &data).with_compensated_estimates(),
                &data,
                FaultPlan::none(),
                seed,
                cfg,
            ),
            _ => gr_reduction::run_with_protocol(
                &graph,
                PushCancelFlow::new(&graph, &data),
                &data,
                FaultPlan::none(),
                seed,
                cfg,
            ),
        };
        CompPfRow {
            algorithm: alg,
            nodes: n,
            best_max_err: r.best_max_err,
            rounds: r.rounds,
        }
    });
    let mut t = Table::new(name, &["algorithm", "nodes", "best max err", "rounds"]);
    for row in rows {
        t.push(
            vec![
                row.algorithm.into(),
                row.nodes.to_string(),
                fmt_err(row.best_max_err),
                row.rounds.to_string(),
            ],
            &row,
        );
    }
    t
}

/// Sanity companion to Figs. 4/7: with no failure, PF and PCF produce the
/// same trajectory (same seed ⇒ same schedule; equivalence up to f64
/// rounding). Returns the max |PF−PCF| estimate deviation over the run.
pub fn equivalence_check(cube_dim: u32, rounds: u64, seed: u64) -> f64 {
    let n = 1usize << cube_dim;
    let graph = hypercube(cube_dim);
    let data = InitialData::uniform_random(n, AggregateKind::Average, seed ^ 0xE0);
    let mut pf = Simulator::new(
        &graph,
        PushFlow::new(&graph, &data),
        FaultPlan::none(),
        seed,
    );
    let mut pcf = Simulator::new(
        &graph,
        PushCancelFlow::new(&graph, &data),
        FaultPlan::none(),
        seed,
    );
    let mut worst: f64 = 0.0;
    for _ in 0..rounds {
        pf.step();
        pcf.step();
        for i in 0..n as u32 {
            let d = (pf.protocol().scalar_estimate(i) - pcf.protocol().scalar_estimate(i)).abs();
            worst = worst.max(d);
        }
    }
    worst
}

/// Convenience wrapper used by tests: run one small accuracy point and
/// return (PF best err, PCF best err).
pub fn small_accuracy_gap(exp: u32, seed: u64) -> (f64, f64) {
    let n = 8usize.pow(exp);
    let graph = torus_of_exp(exp);
    let data = InitialData::uniform_random(n, AggregateKind::Average, seed);
    let cfg = RunConfig {
        target_accuracy: Some(1e-15),
        max_rounds: 60_000,
        record_every: 0,
        plateau_window: Some(3000),
    };
    let pf = run_reduction(
        Algorithm::PushFlow,
        &graph,
        &data,
        FaultPlan::none(),
        seed,
        cfg,
    );
    let pcf = run_reduction(
        Algorithm::PushCancelFlow(PhiMode::Eager),
        &graph,
        &data,
        FaultPlan::none(),
        seed,
        cfg,
    );
    (pf.best_max_err, pcf.best_max_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_exp_one_is_cube() {
        let g = torus_of_exp(1);
        assert_eq!(g.len(), 8);
        assert!(gr_topology::is_regular(&g, 3));
        let g2 = torus_of_exp(2);
        assert_eq!(g2.len(), 64);
        assert!(gr_topology::is_regular(&g2, 6));
    }

    #[test]
    fn accuracy_sweep_tiny() {
        let opts = AccuracySweepOpts {
            max_exp: 1,
            plateau: 500,
            max_rounds: 20_000,
            threads: 1,
            ..Default::default()
        };
        let t = accuracy_sweep("t", Algorithm::PushCancelFlow(PhiMode::Eager), &opts);
        assert_eq!(t.rows.len(), 4); // 2 topologies × 2 aggregates
                                     // 8-node PCF must reach excellent accuracy
        for raw in &t.raw {
            assert!(raw["best_max_err"].as_f64().unwrap() < 1e-13);
        }
    }

    #[test]
    fn failure_figure_shapes() {
        let opts = FailureTrajOpts {
            cube_dim: 4,
            rounds: 120,
            seed: 3,
        };
        let t = failure_figure("t", &opts, 60);
        assert_eq!(t.rows.len(), 120);
        // PF rebounds after the failure, PCF does not: compare error at 59
        // vs 62.
        let at = |r: u64, key: &str| {
            t.raw
                .iter()
                .find(|v| v["round"] == r)
                .and_then(|v| v[key].as_f64())
                .unwrap()
        };
        assert!(
            at(62, "pf_max") > at(59, "pf_max") * 5.0,
            "PF should rebound"
        );
        assert!(
            at(62, "pcf_max") < at(59, "pcf_max") * 5.0,
            "PCF should not"
        );
        // identical before the failure (same seed)
        assert!((at(30, "pf_max") - at(30, "pcf_max")).abs() <= at(30, "pf_max") * 1e-6);
    }

    #[test]
    fn bus_example_matches_schematic() {
        let t = bus_example("t", 8, 6000, 0);
        assert_eq!(t.rows.len(), 7);
        for raw in &t.raw {
            let pf = raw["pf_flow"].as_f64().unwrap();
            let schematic = raw["schematic"].as_f64().unwrap();
            assert!(
                (pf - schematic).abs() < 3.0,
                "pf={pf} schematic={schematic}"
            );
            // PCF flows stay near the aggregate (2), not the transport
            let pcf = raw["pcf_flow_magnitude"].as_f64().unwrap();
            assert!(pcf < 30.0, "pcf flow magnitude {pcf}");
        }
    }

    #[test]
    fn dmgs_sweep_tiny_shows_ordering() {
        let opts = DmgsSweepOpts {
            min_exp: 4,
            max_exp: 5,
            m: 4,
            runs: 2,
            max_rounds_per_reduction: 1500,
            seed: 9,
            threads: 1,
        };
        let t = dmgs_sweep("t", &opts);
        assert_eq!(t.rows.len(), 4); // 2 algorithms × 2 sizes
        let get = |alg: &str, n: u64| {
            t.raw
                .iter()
                .find(|r| r["algorithm"] == alg && r["nodes"] == n)
                .map(|r| r["mean_fact_err"].as_f64().unwrap())
                .unwrap()
        };
        // both factorize; PCF at least as good as PF at the larger size
        assert!(get("dmGS(PCF)", 32) < 1e-12);
        assert!(get("dmGS(PCF)", 32) <= get("dmGS(PF)", 32) * 2.0);
    }

    #[test]
    fn message_loss_ablation_tiny() {
        let t = message_loss_ablation("t", 4, 3, 1);
        // push-sum biased at any loss; PCF converged everywhere
        for r in &t.raw {
            let alg = r["algorithm"].as_str().unwrap();
            let p = r["loss_prob"].as_f64().unwrap();
            let conv = r["converged"].as_bool().unwrap();
            if alg == "PCF" {
                assert!(conv, "PCF should converge at p={p}");
            }
            if alg == "push-sum" && p >= 0.05 {
                assert!(!conv, "push-sum cannot reach 1e-14 at p={p}");
            }
        }
    }

    #[test]
    fn node_crash_ablation_tiny() {
        let t = node_crash_ablation("t", 4, 5, 1);
        for r in &t.raw {
            assert_eq!(r["converged"], true, "{r}");
        }
    }

    #[test]
    fn bit_flip_ablation_tiny() {
        let t = bit_flip_ablation("t", 4, 7, 1);
        assert_eq!(t.rows.len(), 15); // 5 variants × 3 rates
                                      // at the lowest rate, PCF recovers to high accuracy
        let pcf_low = t
            .raw
            .iter()
            .find(|r| r["algorithm"] == "PCF" && r["flip_prob"].as_f64().unwrap() < 1e-3)
            .unwrap();
        assert!(pcf_low["err_after_recovery"].as_f64().unwrap() < 1e-9);
    }

    #[test]
    fn compensated_pf_sits_between_pf_and_pcf() {
        let t = compensated_pf_ablation("t", 2, 3, 1);
        let best = |alg: &str| {
            t.raw
                .iter()
                .filter(|r| r["algorithm"] == alg && r["nodes"] == 64)
                .map(|r| r["best_max_err"].as_f64().unwrap())
                .next()
                .unwrap()
        };
        // write-side rounding keeps compensated PF above PCF
        assert!(best("PF-compensated") <= best("PF") * 2.0);
        assert!(best("PCF") <= best("PF"));
    }

    #[test]
    fn execution_model_ablation_converges_everywhere() {
        let t = execution_model_ablation("t", 4, 5, 1);
        for r in &t.raw {
            assert_eq!(r["converged"], true, "{r}");
        }
    }

    #[test]
    fn equivalence_before_failure() {
        let dev = equivalence_check(4, 80, 5);
        assert!(dev < 1e-9, "PF/PCF diverged: {dev}");
    }
}
