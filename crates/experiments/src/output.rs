//! Result tables: markdown to stdout, CSV + JSON to `results/`.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple rectangular result table.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment identifier ("fig3", "fig8", …).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of formatted cells (numbers pre-formatted by the experiment;
    /// raw values go to the JSON sidecar via [`Table::raw`]).
    pub rows: Vec<Vec<String>>,
    /// Machine-readable row payloads, one JSON value per row.
    pub raw: Vec<serde_json::Value>,
}

impl Table {
    /// Start an empty table.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            raw: Vec::new(),
        }
    }

    /// Append a row; `raw` is the machine-readable twin of the formatted
    /// cells.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header.
    pub fn push<T: Serialize>(&mut self, cells: Vec<String>, raw: &T) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
        self.raw
            .push(serde_json::to_value(raw).expect("row serialization"));
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        s
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        s
    }

    /// Write `results/<name>.csv` and `results/<name>.json`, and return
    /// the CSV path. The JSON sidecar carries the raw row values plus the
    /// run manifest so EXPERIMENTS.md entries are regenerable.
    pub fn save(&self, results_dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(results_dir)?;
        let csv_path = results_dir.join(format!("{}.csv", self.name));
        std::fs::write(&csv_path, self.to_csv())?;
        let json_path = results_dir.join(format!("{}.json", self.name));
        let doc = serde_json::json!({
            "experiment": self.name,
            "columns": self.columns,
            "rows": self.raw,
        });
        std::fs::write(&json_path, serde_json::to_string_pretty(&doc).unwrap())?;
        Ok(csv_path)
    }

    /// Print the markdown rendering plus a save notice (main() helper).
    pub fn emit(&self, results_dir: &Path) {
        println!("\n## {}\n", self.name);
        print!("{}", self.to_markdown());
        match self.save(results_dir) {
            Ok(p) => println!("\nsaved: {} (+ .json)", p.display()),
            Err(e) => eprintln!("warning: could not save results: {e}"),
        }
    }
}

/// The default results directory: `$GR_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("GR_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Format an error value the way the paper's log-scale figures read
/// (`3.2e-15`), with NaN/∞ made explicit.
pub fn fmt_err(e: f64) -> String {
    if e.is_nan() {
        "NaN".into()
    } else if e.is_infinite() {
        "inf".into()
    } else {
        format!("{e:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        n: usize,
        err: f64,
    }

    fn sample() -> Table {
        let mut t = Table::new("test_table", &["n", "err"]);
        t.push(vec!["8".into(), fmt_err(1e-15)], &Row { n: 8, err: 1e-15 });
        t.push(
            vec!["64".into(), fmt_err(2e-13)],
            &Row { n: 64, err: 2e-13 },
        );
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| n | err |"));
        assert!(md.contains("| 8 | 1.00e-15 |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_roundtrip_and_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1,2".into(), "q\"q".into()], &serde_json::json!({}));
        let csv = t.to_csv();
        assert!(csv.contains("\"1,2\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    fn save_writes_both_files() {
        let dir = std::env::temp_dir().join(format!("gr_test_{}", std::process::id()));
        let p = sample().save(&dir).unwrap();
        assert!(p.exists());
        assert!(dir.join("test_table.json").exists());
        let json: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("test_table.json")).unwrap())
                .unwrap();
        assert_eq!(json["rows"][1]["n"], 64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()], &serde_json::json!({}));
    }

    #[test]
    fn err_formatting() {
        assert_eq!(fmt_err(f64::NAN), "NaN");
        assert_eq!(fmt_err(f64::INFINITY), "inf");
        assert_eq!(fmt_err(3.21e-15), "3.21e-15");
    }
}
