//! Work-stealing parallel map over independent simulation runs.
//!
//! Experiments replicate runs over seeds and sweep configurations; every
//! run is an independent, internally-sequential, deterministic simulation
//! — the embarrassingly-parallel shape. Results come back in input order
//! regardless of completion order, so parallelism never perturbs output
//! files.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item on up to `threads` worker threads and return
/// the results in input order. `threads == 1` (or a single-item input)
/// runs inline with zero overhead.
///
/// # Panics
/// Re-raises the first worker panic on the calling thread with its
/// original payload (via [`std::panic::resume_unwind`]), so a
/// `panic!("boom")` inside `f` surfaces as "boom" to the caller.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Workers claim whole chunks through one shared atomic cursor and then
    // work through the chunk's own disjoint `&mut` slices — one
    // synchronisation per chunk instead of two mutex round-trips per item,
    // and results land in input order by construction. Chunks are a
    // fraction of `n / threads` so stragglers can still steal work from a
    // slow neighbor.
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = (n / (threads * 4)).max(1);
    type Task<'a, T, R> = Mutex<Option<(&'a mut [Option<T>], &'a mut [Option<R>])>>;
    let tasks: Vec<Task<'_, T, R>> = items
        .chunks_mut(chunk)
        .zip(results.chunks_mut(chunk))
        .map(|pair| Mutex::new(Some(pair)))
        .collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    let (inp, out) = task.lock().unwrap().take().expect("chunk claimed twice");
                    for (slot, res) in inp.iter_mut().zip(out.iter_mut()) {
                        let item = slot.take().expect("item taken twice");
                        *res = Some(f(item));
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    drop(tasks);
    results
        .into_iter()
        .map(|r| r.expect("missing result"))
        .collect()
}

/// The machine's available parallelism (≥ 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), 4, |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_inline() {
        let out = par_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(vec![5], 64, |x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn non_clone_items_move_through() {
        // Items only need Send, not Clone.
        struct NoClone(String);
        let items = vec![NoClone("a".into()), NoClone("b".into())];
        let out = par_map(items, 2, |x| x.0);
        assert_eq!(out, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panic_propagates() {
        let _ = par_map(vec![0, 1, 2, 3], 2, |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn threads_helper_positive() {
        assert!(default_threads() >= 1);
    }
}
