//! Minimal `--key=value` command-line options.

use std::collections::BTreeMap;

/// Parsed `--key=value` / `--key value` arguments with typed accessors.
///
/// Unknown keys are rejected at access-check time via [`Opts::finish`], so
/// a typo'd flag fails loudly instead of silently running the default
/// experiment.
#[derive(Debug, Default)]
pub struct Opts {
    values: BTreeMap<String, String>,
    touched: std::cell::RefCell<Vec<String>>,
}

impl Opts {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// Both `--key=value` and the two-token `--key value` spelling are
    /// accepted; a trailing `--key` with no value (or followed by another
    /// option) is read as the boolean `--key=true`.
    ///
    /// # Panics
    /// Panics on malformed arguments (anything not starting with `--`).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = BTreeMap::new();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            let rest = a
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key=value, got {a:?}"));
            let (k, v) = match rest.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => {
                    let takes_next = it.peek().is_some_and(|n| !n.starts_with("--"));
                    let v = if takes_next {
                        it.next().unwrap()
                    } else {
                        "true".to_string()
                    };
                    (rest.to_string(), v)
                }
            };
            values.insert(k, v);
        }
        Opts {
            values,
            touched: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    fn raw(&self, key: &str) -> Option<&str> {
        self.touched.borrow_mut().push(key.to_string());
        self.values.get(key).map(String::as_str)
    }

    /// A `u64` option with default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.raw(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// An `f64` option with default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.raw(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A boolean option (`true`/`false`) with default.
    pub fn bool(&self, key: &str, default: bool) -> bool {
        self.raw(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be true/false, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A string option with default.
    pub fn string(&self, key: &str, default: &str) -> String {
        self.raw(key).unwrap_or(default).to_string()
    }

    /// Panic if any supplied key was never consulted (catches typos).
    pub fn finish(&self) {
        let touched = self.touched.borrow();
        for k in self.values.keys() {
            assert!(
                touched.iter().any(|t| t == k),
                "unknown option --{k} (known: {:?})",
                touched
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Opts {
        Opts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn typed_accessors() {
        let o = opts(&["--runs=7", "--eps=1e-9", "--full=true", "--out=x.csv"]);
        assert_eq!(o.u64("runs", 1), 7);
        assert_eq!(o.f64("eps", 0.0), 1e-9);
        assert!(o.bool("full", false));
        assert_eq!(o.string("out", "y"), "x.csv");
        o.finish();
    }

    #[test]
    fn defaults_apply() {
        let o = opts(&[]);
        assert_eq!(o.u64("runs", 3), 3);
        assert!(!o.bool("full", false));
        o.finish();
    }

    #[test]
    #[should_panic(expected = "unknown option")]
    fn unknown_key_caught() {
        let o = opts(&["--tyop=1"]);
        let _ = o.u64("runs", 1);
        o.finish();
    }

    #[test]
    #[should_panic(expected = "expected --key=value")]
    fn malformed_rejected() {
        let _ = opts(&["runs=3"]);
    }

    #[test]
    fn space_separated_values() {
        let o = opts(&["--mode", "sanity", "--runs", "7", "--x", "-5"]);
        assert_eq!(o.string("mode", "stress"), "sanity");
        assert_eq!(o.u64("runs", 1), 7);
        assert_eq!(o.string("x", "0"), "-5");
        o.finish();
    }

    #[test]
    fn bare_flag_is_boolean_true() {
        let o = opts(&["--full", "--mode", "stress"]);
        assert!(o.bool("full", false));
        assert_eq!(o.string("mode", "sanity"), "stress");
        o.finish();
    }

    #[test]
    #[should_panic(expected = "must be an integer")]
    fn bad_int_rejected() {
        let o = opts(&["--runs=abc"]);
        let _ = o.u64("runs", 1);
    }
}
