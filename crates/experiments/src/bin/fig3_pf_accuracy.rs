//! Fig. 3: globally achievable accuracy of push-flow vs system size.
//!
//! Sweeps 3D-torus and hypercube topologies over `8^1 … 8^i` nodes for
//! SUM and AVG aggregates, runs PF until its error plateaus, and reports
//! the best max local error it ever achieves. The paper's shape: error
//! grows steadily with scale (and SUM is worse than AVG).
//!
//! Usage: `fig3_pf_accuracy [--max-exp=4] [--full=false] [--seed=42]
//!         [--plateau=4000] [--threads=N]`
//! `--full=true` raises the sweep to the paper's 2¹⁵ = 32768 nodes.

use gr_experiments::figures::{accuracy_sweep, AccuracySweepOpts};
use gr_experiments::{output, Opts};
use gr_reduction::Algorithm;

fn main() {
    let opts = Opts::from_env();
    let full = opts.bool("full", false);
    let o = AccuracySweepOpts {
        max_exp: opts.u64("max-exp", if full { 5 } else { 4 }) as u32,
        plateau: opts.u64("plateau", 4000),
        seed: opts.u64("seed", 42),
        threads: opts.u64(
            "threads",
            gr_experiments::parallel::default_threads() as u64,
        ) as usize,
        ..Default::default()
    };
    opts.finish();
    let t = accuracy_sweep("fig3_pf_accuracy", Algorithm::PushFlow, &o);
    t.emit(&output::results_dir());
}
