//! Ablation A5: compensated summation vs push-flow's accuracy collapse.
//!
//! The paper (Sec. II-B) argues that careful summation cannot rescue PF
//! because the flow *values* themselves absorb rounding proportional to
//! their own O(n)-growing magnitude. This ablation measures plain PF,
//! PF with Neumaier-compensated estimate summation, and PCF over the
//! torus sweep (SUM aggregate — the worst case of Fig. 3).
//!
//! Usage: `ablation_compensated_pf [--max-exp=4] [--seed=42] [--threads=N]`

use gr_experiments::figures::compensated_pf_ablation;
use gr_experiments::{output, Opts};

fn main() {
    let opts = Opts::from_env();
    let max_exp = opts.u64("max-exp", 4) as u32;
    let seed = opts.u64("seed", 42);
    let threads = opts.u64(
        "threads",
        gr_experiments::parallel::default_threads() as u64,
    ) as usize;
    opts.finish();
    compensated_pf_ablation("ablation_compensated_pf", max_exp, seed, threads)
        .emit(&output::results_dir());
}
