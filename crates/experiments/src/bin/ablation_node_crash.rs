//! Ablation A3: fail-stop node crash mid-reduction.
//!
//! A node crashes (all its links die, its data is lost) at round 50 or
//! 150; the survivors' failure handling excises it and they re-converge
//! to the aggregate of the *remaining* mass (oracle-recomputed). Both PF
//! and PCF tolerate the crash; PF pays its usual fall-back, PCF does not.
//!
//! Usage: `ablation_node_crash [--cube-dim=6] [--seed=31] [--threads=N]`

use gr_experiments::figures::node_crash_ablation;
use gr_experiments::{output, Opts};

fn main() {
    let opts = Opts::from_env();
    let cube = opts.u64("cube-dim", 6) as u32;
    let seed = opts.u64("seed", 31);
    let threads = opts.u64(
        "threads",
        gr_experiments::parallel::default_threads() as u64,
    ) as usize;
    opts.finish();
    node_crash_ablation("ablation_node_crash", cube, seed, threads).emit(&output::results_dir());
}
