//! Fig. 6: the Fig. 3 accuracy sweep repeated with push-cancel-flow.
//!
//! Same topologies, sizes, aggregates and seeds as `fig3_pf_accuracy`;
//! the paper's shape: PCF stays at machine-precision level with only a
//! slow error increase in the system size, orders of magnitude below PF.
//!
//! Usage: `fig6_pcf_accuracy [--max-exp=4] [--full=false] [--seed=42]
//!         [--plateau=4000] [--threads=N]`

use gr_experiments::figures::{accuracy_sweep, AccuracySweepOpts};
use gr_experiments::{output, Opts};
use gr_reduction::{Algorithm, PhiMode};

fn main() {
    let opts = Opts::from_env();
    let full = opts.bool("full", false);
    let o = AccuracySweepOpts {
        max_exp: opts.u64("max-exp", if full { 5 } else { 4 }) as u32,
        plateau: opts.u64("plateau", 4000),
        seed: opts.u64("seed", 42),
        threads: opts.u64(
            "threads",
            gr_experiments::parallel::default_threads() as u64,
        ) as usize,
        ..Default::default()
    };
    opts.finish();
    let t = accuracy_sweep(
        "fig6_pcf_accuracy",
        Algorithm::PushCancelFlow(PhiMode::Eager),
        &o,
    );
    t.emit(&output::results_dir());
}
