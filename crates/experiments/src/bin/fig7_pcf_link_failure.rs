//! Fig. 7: the Fig. 4 failure experiment with push-cancel-flow.
//!
//! Identical setup and random seed as Fig. 4 — PF and PCF see the same
//! communication schedule, so the trajectories coincide until the failure
//! handling at iteration 75 / 175; afterwards PCF continues converging
//! with no fall-back while PF restarts. Both series are in each table.
//!
//! Usage: `fig7_pcf_link_failure [--rounds=200] [--seed=7] [--cube-dim=6]`

use gr_experiments::figures::{equivalence_check, failure_figure, FailureTrajOpts};
use gr_experiments::{output, Opts};

fn main() {
    let opts = Opts::from_env();
    let o = FailureTrajOpts {
        cube_dim: opts.u64("cube-dim", 6) as u32,
        rounds: opts.u64("rounds", 200),
        seed: opts.u64("seed", 7),
    };
    opts.finish();
    let dir = output::results_dir();
    failure_figure("fig7_link_failure_at_75", &o, 75).emit(&dir);
    failure_figure("fig7_link_failure_at_175", &o, 175).emit(&dir);
    let dev = equivalence_check(o.cube_dim, o.rounds.min(100), o.seed);
    println!(
        "\nfailure-free PF/PCF max estimate deviation over {} rounds: {dev:e}",
        o.rounds.min(100)
    );
}
