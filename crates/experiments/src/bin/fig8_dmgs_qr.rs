//! Fig. 8: distributed QR — dmGS(PF) vs dmGS(PCF) factorization error.
//!
//! Random `V ∈ R^{N×16}` over hypercubes with `N = 2^5 … 2^max` nodes;
//! every reduction gets target accuracy 1e-15 and an iteration cap;
//! errors are averaged over `--runs` random matrices. The paper's shape:
//! dmGS(PF)'s error grows with N, dmGS(PCF)'s stays flat at the target.
//!
//! Usage: `fig8_dmgs_qr [--runs=5] [--max-exp=8] [--full=false]
//!         [--m=16] [--cap=3000] [--seed=1234] [--threads=N]`
//! `--full=true` uses the paper's 50 runs and N up to 2¹⁰.

use gr_experiments::figures::{dmgs_sweep, DmgsSweepOpts};
use gr_experiments::{output, Opts};

fn main() {
    let opts = Opts::from_env();
    let full = opts.bool("full", false);
    let o = DmgsSweepOpts {
        min_exp: opts.u64("min-exp", 5) as u32,
        max_exp: opts.u64("max-exp", if full { 10 } else { 8 }) as u32,
        m: opts.u64("m", 16) as usize,
        runs: opts.u64("runs", if full { 50 } else { 5 }) as u32,
        max_rounds_per_reduction: opts.u64("cap", 3000),
        seed: opts.u64("seed", 1234),
        threads: opts.u64(
            "threads",
            gr_experiments::parallel::default_threads() as u64,
        ) as usize,
    };
    opts.finish();
    dmgs_sweep("fig8_dmgs_qr", &o).emit(&output::results_dir());
}
