//! Fig. 4: push-flow error trajectory under one permanent link failure.
//!
//! 6D hypercube (64 nodes), AVG aggregate; a single link dies and its
//! handling runs at iteration 75 (left panel) and 175 (right panel).
//! The paper's shape: PF falls back almost to the start in both cases,
//! no matter how accurate it already was. (The emitted tables carry the
//! PCF trajectory too, since Fig. 7 overlays them; `fig7_pcf_link_failure`
//! emits the same data under the Fig. 7 name.)
//!
//! Usage: `fig4_pf_link_failure [--rounds=200] [--seed=7] [--cube-dim=6]`

use gr_experiments::figures::{failure_figure, FailureTrajOpts};
use gr_experiments::{output, Opts};

fn main() {
    let opts = Opts::from_env();
    let o = FailureTrajOpts {
        cube_dim: opts.u64("cube-dim", 6) as u32,
        rounds: opts.u64("rounds", 200),
        seed: opts.u64("seed", 7),
    };
    opts.finish();
    let dir = output::results_dir();
    failure_figure("fig4_link_failure_at_75", &o, 75).emit(&dir);
    failure_figure("fig4_link_failure_at_175", &o, 175).emit(&dir);
}
