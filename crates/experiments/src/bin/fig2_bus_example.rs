//! Fig. 2 (executable): the bus-network worked example of paper Sec. II-B.
//!
//! Runs push-flow on the `v₁ = n+1, vᵢ = 1` bus with the regular
//! round-robin schedule until convergence and prints each edge's flow
//! against the schematic values `f_{i−1,i} = n−i+1`, plus PCF's flow
//! magnitudes on the same input for contrast (they stay near the
//! aggregate, 2).
//!
//! Usage: `fig2_bus_example [--n=16] [--rounds=20000] [--seed=0]`

use gr_experiments::figures::bus_example;
use gr_experiments::{output, Opts};

fn main() {
    let opts = Opts::from_env();
    let n = opts.u64("n", 16) as usize;
    let rounds = opts.u64("rounds", 20_000);
    let seed = opts.u64("seed", 0);
    opts.finish();
    let t = bus_example("fig2_bus_example", n, rounds, seed);
    t.emit(&output::results_dir());
}
