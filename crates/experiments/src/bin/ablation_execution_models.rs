//! Ablation A4: synchronous vs asynchronous activation vs delayed links.
//!
//! All protocols must converge under every execution model (the flow
//! machinery never assumed synchrony); the table shows the round cost of
//! each relaxation at equal per-node send rates.
//!
//! Usage: `ablation_execution_models [--cube-dim=6] [--seed=41] [--threads=N]`

use gr_experiments::figures::execution_model_ablation;
use gr_experiments::{output, Opts};

fn main() {
    let opts = Opts::from_env();
    let cube = opts.u64("cube-dim", 6) as u32;
    let seed = opts.u64("seed", 41);
    let threads = opts.u64(
        "threads",
        gr_experiments::parallel::default_threads() as u64,
    ) as usize;
    opts.finish();
    execution_model_ablation("ablation_execution_models", cube, seed, threads)
        .emit(&output::results_dir());
}
