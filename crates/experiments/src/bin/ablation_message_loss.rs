//! Ablation A2: achievable accuracy under probabilistic message loss.
//!
//! Sweeps loss probabilities 0 … 0.5 on a hypercube for push-sum, PF,
//! PCF and flow updating. Expected shape: push-sum converges to a
//! *wrong* value as soon as any mass is lost (its best error tracks the
//! loss rate); the flow-based algorithms converge to full accuracy at
//! any loss rate, only more slowly.
//!
//! Usage: `ablation_message_loss [--cube-dim=6] [--seed=21] [--threads=N]`

use gr_experiments::figures::message_loss_ablation;
use gr_experiments::{output, Opts};

fn main() {
    let opts = Opts::from_env();
    let cube = opts.u64("cube-dim", 6) as u32;
    let seed = opts.u64("seed", 21);
    let threads = opts.u64(
        "threads",
        gr_experiments::parallel::default_threads() as u64,
    ) as usize;
    opts.finish();
    message_loss_ablation("ablation_message_loss", cube, seed, threads)
        .emit(&output::results_dir());
}
