//! Ablation A1: bit-flip episodes vs the ϕ-update variants of PCF.
//!
//! Injects uniformly-placed bit flips into in-flight messages for 300
//! rounds, then runs 1500 clean rounds, and reports the max error after
//! each phase for PF, PCF (Fig. 5 as printed) and PCF-hardened. The
//! paper's claim under test: the printed Fig. 5 variant is not fully
//! bit-flip tolerant; the hardened ϕ variant preserves PF's theoretical
//! tolerance — while in plain f64 even PF cannot survive high-exponent
//! flips unscathed (its own Sec. II critique).
//!
//! Usage: `ablation_phi_variants [--cube-dim=5] [--seed=11] [--threads=N]`

use gr_experiments::figures::bit_flip_ablation;
use gr_experiments::{output, Opts};

fn main() {
    let opts = Opts::from_env();
    let cube = opts.u64("cube-dim", 5) as u32;
    let seed = opts.u64("seed", 11);
    let threads = opts.u64(
        "threads",
        gr_experiments::parallel::default_threads() as u64,
    ) as usize;
    opts.finish();
    bit_flip_ablation("ablation_phi_variants", cube, seed, threads).emit(&output::results_dir());
}
