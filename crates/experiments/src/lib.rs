//! The per-figure experiment harness.
//!
//! One binary per figure of the paper's evaluation (see `DESIGN.md` for
//! the experiment index), built on shared machinery:
//!
//! * [`figures`] — the experiment implementations (callable from binaries,
//!   benches and integration tests alike);
//! * [`output`] — CSV/markdown/JSON emitters writing under `results/`;
//! * [`parallel`] — a small crossbeam work-stealing `par_map` so
//!   independent simulation runs use all cores while each run stays
//!   sequential and deterministic;
//! * [`opts`] — minimal `--key=value` argument parsing (experiments have
//!   few knobs; a CLI framework would be a heavier dependency than the
//!   harness itself).
//!
//! All experiments are deterministic given `--seed`; the defaults
//! reproduce the committed `EXPERIMENTS.md` numbers exactly. Paper-scale
//! sweeps (2¹⁵ nodes, 50 dmGS repetitions) are gated behind `--full=true`
//! because they take tens of minutes on a laptop-class machine.

pub mod figures;
pub mod opts;
pub mod output;
pub mod parallel;

pub use opts::Opts;
pub use output::Table;
