//! Static network topologies for gossip-based distributed reduction.
//!
//! The paper evaluates on a bus network (the Sec. II-B case study), 3D tori
//! `2^i × 2^i × 2^i`, and hypercubes; the convergence theory (Boyd et al.)
//! applies to any connected graph. This crate provides an immutable,
//! CSR-backed undirected [`Graph`] plus constructors for every topology the
//! paper touches and several more that are useful for testing and
//! extensions (random regular graphs, Erdős–Rényi, trees, stars).
//!
//! Graphs are *static*: link/node failures are modelled dynamically by the
//! simulator (`gr-netsim`) on top of an unchanging base topology, mirroring
//! the paper's model where `N_i` is "a nonempty fixed set of nodes `i` can
//! communicate with".
//!
//! ```
//! use gr_topology::{hypercube, is_connected, is_regular, diameter};
//!
//! let g = hypercube(6); // the paper's failure-experiment topology
//! assert_eq!(g.len(), 64);
//! assert!(is_regular(&g, 6));
//! assert!(is_connected(&g));
//! assert_eq!(diameter(&g), Some(6));
//! assert_eq!(g.neighbors(0), &[1, 2, 4, 8, 16, 32]);
//! ```

mod builders;
mod graph;
mod props;

pub use builders::{
    barabasi_albert, binary_tree, bus, complete, disjoint_union, erdos_renyi, erdos_renyi_sparse,
    grid2d, hypercube, random_regular, ring, star, torus2d, torus3d, watts_strogatz,
};
pub use graph::{Graph, GraphBuilder, NodeId};
pub use props::{degree_histogram, diameter, is_connected, is_regular};
