//! The CSR-backed undirected graph type.

use std::fmt;

/// Index of a node in a [`Graph`]. 32 bits comfortably covers the paper's
/// largest experiment (2¹⁵ nodes) while halving adjacency-array bandwidth
/// relative to `usize` — the neighbor scan is the hot loop of every
/// simulated round.
pub type NodeId = u32;

/// An immutable undirected graph in compressed-sparse-row form.
///
/// Neighbor lists are sorted, self-loop-free and duplicate-free, which
/// gives deterministic iteration order (important: the simulator's random
/// partner choice indexes into this list, so graph construction order must
/// not leak into the communication schedule) and `O(log deg)` neighbor-slot
/// lookup.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    adj: Vec<NodeId>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` for the empty graph.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// The sorted neighbor list of `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn neighbors(&self, i: NodeId) -> &[NodeId] {
        let i = i as usize;
        &self.adj[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Degree of node `i`.
    #[inline]
    pub fn degree(&self, i: NodeId) -> usize {
        self.neighbors(i).len()
    }

    /// Position of `j` within `i`'s neighbor list, if adjacent. Protocols
    /// use this slot to index per-neighbor state (flow variables), so this
    /// sits on the per-message hot path. For the small degrees of every
    /// supported topology a branchless counting scan (`#{k : nbrs[k] < j}`
    /// — vectorizable, no data-dependent branches) beats a binary search,
    /// whose log(deg) serialized, unpredictable iterations dominate; large
    /// neighborhoods fall back to the search.
    #[inline]
    pub fn neighbor_slot(&self, i: NodeId, j: NodeId) -> Option<usize> {
        let nbrs = self.neighbors(i);
        if nbrs.len() <= 32 {
            let slot: usize = nbrs.iter().map(|&x| (x < j) as usize).sum();
            (nbrs.get(slot) == Some(&j)).then_some(slot)
        } else {
            nbrs.binary_search(&j).ok()
        }
    }

    /// `true` if `i` and `j` are adjacent.
    #[inline]
    pub fn has_edge(&self, i: NodeId, j: NodeId) -> bool {
        self.neighbor_slot(i, j).is_some()
    }

    /// Iterate over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.len() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Per-node offsets into the flattened directed-arc array. Arc `k` of
    /// node `i` (its `k`-th neighbor) has flat index `arc_base(i) + k`;
    /// protocols lay their per-neighbor state out in one contiguous vector
    /// using this indexing.
    #[inline]
    pub fn arc_base(&self, i: NodeId) -> usize {
        self.offsets[i as usize]
    }

    /// Total number of directed arcs (`2 × edge_count`).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.adj.len()
    }

    /// Build a graph directly from validated CSR arrays, bypassing the
    /// edge-list sort of [`GraphBuilder::build`]. This is the constructor
    /// for the large-topology fast paths (million-node tori) where the
    /// builder's `O(E log E)` sort and edge staging double peak memory.
    ///
    /// `offsets` must have length `n + 1`, start at 0, end at `adj.len()`
    /// and be non-decreasing; every row of `adj` must be strictly
    /// ascending, in range, and self-loop-free, and the adjacency relation
    /// must be symmetric in total arc count (`adj.len()` even). Validation
    /// is a single `O(V + E)` pass.
    ///
    /// # Panics
    /// Panics if any of the invariants above is violated.
    pub fn from_csr(offsets: Vec<usize>, adj: Vec<NodeId>) -> Graph {
        assert!(!offsets.is_empty(), "offsets must have length n + 1");
        let n = offsets.len() - 1;
        assert!(n <= NodeId::MAX as usize, "too many nodes for u32 ids");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(offsets[n], adj.len(), "offsets must end at adj.len()");
        assert!(
            adj.len().is_multiple_of(2),
            "arc count must be even (undirected graph)"
        );
        for i in 0..n {
            assert!(
                offsets[i] <= offsets[i + 1],
                "offsets must be non-decreasing at node {i}"
            );
            let row = &adj[offsets[i]..offsets[i + 1]];
            let mut prev: Option<NodeId> = None;
            for &j in row {
                assert!((j as usize) < n, "neighbor {j} out of range at node {i}");
                assert_ne!(j as usize, i, "self-loop at node {i}");
                if let Some(p) = prev {
                    assert!(p < j, "row of node {i} not strictly ascending");
                }
                prev = Some(j);
            }
        }
        Graph { offsets, adj }
    }

    /// Graphviz DOT rendering (undirected), handy for debugging small
    /// topologies.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("graph G {\n");
        for (u, v) in self.edges() {
            let _ = writeln!(s, "  {u} -- {v};");
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.len())
            .field("edges", &self.edge_count())
            .finish()
    }
}

/// Incremental builder collecting undirected edges.
///
/// Duplicate edges are merged; self-loops are rejected at insertion time.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes and no edges yet.
    pub fn new(n: usize) -> Self {
        assert!(n <= NodeId::MAX as usize, "too many nodes for u32 ids");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Add the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert_ne!(u, v, "self-loop at node {u}");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for {} nodes",
            self.n
        );
        self.edges.push((u.min(v), u.max(v)));
        self
    }

    /// Number of nodes the builder was created with.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Finalize into a CSR [`Graph`]. Duplicate edges collapse to one.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as NodeId; acc];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Sorted insertion order: `edges` is sorted by (u, v), so each
        // node's down-neighbors arrive ascending; up-neighbors likewise.
        // But interleaving can break per-node order, so sort each row.
        for i in 0..self.n {
            adj[offsets[i]..offsets[i + 1]].sort_unstable();
        }
        Graph { offsets, adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 3);
        for i in 0..3 {
            assert_eq!(g.degree(i), 2);
        }
        assert!(g.has_edge(0, 2));
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn duplicate_edges_merge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        GraphBuilder::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    fn neighbor_slots_are_positions() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 0).add_edge(2, 3).add_edge(2, 1);
        let g = b.build();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbor_slot(2, 0), Some(0));
        assert_eq!(g.neighbor_slot(2, 1), Some(1));
        assert_eq!(g.neighbor_slot(2, 3), Some(2));
        assert_eq!(g.neighbor_slot(2, 2), None);
        assert_eq!(g.neighbor_slot(0, 3), None);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1).add_edge(0, 2);
        let g = b.build();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn arc_indexing_contiguous() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.arc_base(0), 0);
        assert_eq!(g.arc_base(1), 1);
        assert_eq!(g.arc_base(2), 3);
    }

    #[test]
    fn dot_output_contains_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let dot = b.build().to_dot();
        assert!(dot.contains("0 -- 1;"));
    }
}
