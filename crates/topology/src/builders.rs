//! Constructors for the standard topologies.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::prelude::*;

/// Bus / path network of `n` nodes: node `i` talks to `i−1` and `i+1`.
/// This is the Sec. II-B case-study topology on which the push-flow
/// accuracy collapse is easiest to analyse.
pub fn bus(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId);
    }
    b.build()
}

/// Ring (cycle) of `n ≥ 3` nodes.
///
/// # Panics
/// Panics for `n < 3` (a 2-ring would be a duplicate edge).
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes, got {n}");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
    }
    b.build()
}

/// Complete graph on `n` nodes — the topology for which Kempe et al.'s
/// original `O(log n + log 1/ε)` push-sum bound was proved.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i as NodeId, j as NodeId);
        }
    }
    b.build()
}

/// Star: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i as NodeId);
    }
    b.build()
}

/// Complete binary tree: node `i`'s children are `2i+1` and `2i+2`.
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(i as NodeId, ((i - 1) / 2) as NodeId);
    }
    b.build()
}

/// 2D grid of `rows × cols` nodes, 4-neighborhood, no wraparound.
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    lattice(&[rows, cols], false)
}

/// 2D torus (grid with wraparound in both dimensions).
///
/// Built straight into CSR form: every node has exactly four distinct
/// neighbors (dimensions ≥ 3), so the offsets are `4·i` by construction
/// and each row is a sorted 4-element write — no edge staging, no global
/// sort. This keeps the 1000×1000 (million-node) scale topology cheap to
/// construct; the result is identical to the generic `lattice` path
/// (pinned by a test).
///
/// # Panics
/// Panics if either dimension is `< 3` (wraparound would duplicate edges).
pub fn torus2d(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus dimensions must be >= 3");
    let n = rows * cols;
    assert!(n <= NodeId::MAX as usize, "too many nodes for u32 ids");
    let offsets: Vec<usize> = (0..=n).map(|i| 4 * i).collect();
    let mut adj = vec![0 as NodeId; 4 * n];
    for r in 0..rows {
        let up = (if r == 0 { rows - 1 } else { r - 1 }) * cols;
        let down = (if r + 1 == rows { 0 } else { r + 1 }) * cols;
        let row = r * cols;
        for c in 0..cols {
            let left = row + if c == 0 { cols - 1 } else { c - 1 };
            let right = row + if c + 1 == cols { 0 } else { c + 1 };
            let mut nb = [
                (up + c) as NodeId,
                left as NodeId,
                right as NodeId,
                (down + c) as NodeId,
            ];
            nb.sort_unstable();
            let base = 4 * (row + c);
            adj[base..base + 4].copy_from_slice(&nb);
        }
    }
    Graph::from_csr(offsets, adj)
}

/// 3D torus of `dx × dy × dz` nodes — one of the two evaluation topologies
/// of Figs. 3 and 6 (`2^i × 2^i × 2^i`). Every node has exactly 6
/// neighbors.
///
/// # Panics
/// Panics if any dimension is `< 3`.
pub fn torus3d(dx: usize, dy: usize, dz: usize) -> Graph {
    assert!(
        dx >= 3 && dy >= 3 && dz >= 3,
        "torus dimensions must be >= 3 (got {dx}x{dy}x{dz})"
    );
    lattice(&[dx, dy, dz], true)
}

/// Axis-aligned lattice over arbitrary dimensions, optionally periodic.
fn lattice(dims: &[usize], wrap: bool) -> Graph {
    let n: usize = dims.iter().product();
    let mut b = GraphBuilder::new(n);
    let mut strides = vec![1usize; dims.len()];
    for d in (0..dims.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * dims[d + 1];
    }
    let mut coord = vec![0usize; dims.len()];
    for idx in 0..n {
        // decode idx -> coord
        let mut rem = idx;
        for d in 0..dims.len() {
            coord[d] = rem / strides[d];
            rem %= strides[d];
        }
        for d in 0..dims.len() {
            let up = if coord[d] + 1 < dims[d] {
                Some(idx + strides[d])
            } else if wrap {
                Some(idx - coord[d] * strides[d])
            } else {
                None
            };
            if let Some(j) = up {
                if j != idx {
                    b.add_edge(idx as NodeId, j as NodeId);
                }
            }
        }
    }
    b.build()
}

/// `d`-dimensional hypercube on `2^d` nodes: `i ~ j` iff their ids differ
/// in exactly one bit. The second evaluation topology of Figs. 3/6 and the
/// topology of the failure experiments (Figs. 4/7, a 6D hypercube) and the
/// dmGS study (Fig. 8).
///
/// # Panics
/// Panics if `d > 24` (guard against accidental exponential blow-up).
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 24, "hypercube dimension {d} too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for bit in 0..d {
            let j = i ^ (1usize << bit);
            if i < j {
                b.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` random graph (seeded, hence reproducible).
///
/// Note the sample is *not* guaranteed connected; callers that need
/// connectivity should check [`crate::is_connected`] and resample.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random::<f64>() < p {
                b.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    b.build()
}

/// Sparse Erdős–Rényi `G(n, p)` sampler in `O(n + m)` expected time via
/// geometric skip sampling (Batagelj & Brandes): instead of flipping a
/// coin per candidate pair, the gap to the next present edge in the
/// linearized lower-triangular pair order is drawn directly as
/// `⌊ln(1−r)/ln(1−p)⌋`. This makes million-node sparse samples (`p ~ c/n`)
/// feasible where [`erdos_renyi`]'s `O(n²)` scan is not.
///
/// Draws a *different* (but equally valid and equally reproducible)
/// sample than [`erdos_renyi`] for the same seed; the dense sampler is
/// kept unchanged so existing seeded corpora are unaffected.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn erdos_renyi_sparse(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
    if n == 0 || p <= 0.0 {
        return GraphBuilder::new(n).build();
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let log_q = (1.0 - p).ln();
    let mut b = GraphBuilder::new(n);
    // Walk pairs (v, w), w < v, in row-major lower-triangular order,
    // jumping over runs of absent edges.
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.random();
        // `as i64` saturates for huge skips (tiny p), which simply walks
        // past the end of the pair space and terminates the loop.
        let skip = ((1.0 - r).ln() / log_q).floor() as i64;
        w = w.saturating_add(skip.max(0)).saturating_add(1);
        while v < n && w >= v as i64 {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            b.add_edge(w as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// Random `k`-regular graph via the pairing/configuration model with
/// rejection (retry until simple). Reproducible given `seed`.
///
/// # Panics
/// Panics if `n·k` is odd or `k ≥ n`, for which no simple `k`-regular
/// graph exists.
pub fn random_regular(n: usize, k: usize, seed: u64) -> Graph {
    assert!(
        (n * k).is_multiple_of(2),
        "n*k must be even for a k-regular graph"
    );
    assert!(k < n, "degree {k} must be < node count {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    'retry: loop {
        // stubs: k copies of each node id
        let mut stubs: Vec<NodeId> = (0..n as NodeId)
            .flat_map(|i| std::iter::repeat_n(i, k))
            .collect();
        stubs.shuffle(&mut rng);
        let mut b = GraphBuilder::new(n);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                continue 'retry; // self-loop or multi-edge: resample
            }
            b.add_edge(u, v);
        }
        return b.build();
    }
}

/// Watts–Strogatz small-world graph: a ring lattice where each node is
/// joined to its `k/2` nearest neighbors on each side, with every edge
/// rewired to a uniform random target with probability `beta`.
/// Reproducible given `seed`; the result may rarely be disconnected for
/// large `beta` — check with [`crate::is_connected`] and resample.
///
/// Small-world graphs matter for gossip: a few long-range shortcuts
/// collapse the diameter of an otherwise local topology, turning
/// torus-like slow mixing into near-logarithmic convergence.
///
/// # Panics
/// Panics if `k` is odd, `k < 2`, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(
        k.is_multiple_of(2) && k >= 2,
        "k must be even and >= 2, got {k}"
    );
    assert!(k < n, "k ({k}) must be < n ({n})");
    assert!((0.0..=1.0).contains(&beta), "beta {beta} outside [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    // Collect lattice edges, then rewire.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * k / 2);
    for i in 0..n {
        for d in 1..=(k / 2) {
            edges.push((i as NodeId, ((i + d) % n) as NodeId));
        }
    }
    use std::collections::HashSet;
    let mut present: HashSet<(NodeId, NodeId)> =
        edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
    for e in edges.iter_mut() {
        if rng.random::<f64>() < beta {
            let (a, b) = *e;
            // rewire the far endpoint to a random node, avoiding self
            // loops and duplicates (retry a few times, else keep as-is)
            for _ in 0..16 {
                let t: NodeId = rng.random_range(0..n as NodeId);
                let key = (a.min(t), a.max(t));
                if t != a && !present.contains(&key) {
                    present.remove(&(a.min(b), a.max(b)));
                    present.insert(key);
                    *e = (a, t);
                    break;
                }
            }
        }
    }
    let mut builder = GraphBuilder::new(n);
    for (a, b) in edges {
        builder.add_edge(a, b);
    }
    builder.build()
}

/// Barabási–Albert preferential-attachment graph: starts from a clique of
/// `m + 1` nodes; every subsequent node attaches to `m` distinct existing
/// nodes chosen proportionally to their current degree. Produces the
/// heavy-tailed degree distributions of real-world overlay networks —
/// a stress test for gossip fairness (hubs are picked often; leaves
/// rarely).
///
/// # Panics
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment count must be >= 1");
    assert!(n > m, "need more nodes ({n}) than attachments ({m})");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Degree-proportional sampling via the repeated-endpoints trick: every
    // edge contributes both endpoints to this list.
    let mut endpoints: Vec<NodeId> = Vec::new();
    let seed_nodes = m + 1;
    for i in 0..seed_nodes {
        for j in (i + 1)..seed_nodes {
            b.add_edge(i as NodeId, j as NodeId);
            endpoints.push(i as NodeId);
            endpoints.push(j as NodeId);
        }
    }
    for v in seed_nodes..n {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v as NodeId, t);
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Disjoint union of `parts`: copy `k`'s nodes are renumbered by the
/// cumulative node count of copies `0..k`, with no edges between copies.
///
/// This is the substrate of the multi-tenant batch executor (`gr-batch`):
/// one protocol instance over the union graph lays its per-node and
/// per-arc state out in tenant-contiguous CSR blocks, so the flow-bank
/// slab is tenant-strided by construction. Because every copy's node ids
/// shift by one uniform offset, neighbor-list order — and therefore every
/// schedule draw and arc slot — is preserved within each block.
///
/// Built via [`Graph::from_csr`] in one `O(V + E)` pass (no edge-list
/// staging), so assembling thousands of small tenant topologies stays
/// cheap.
///
/// # Panics
/// Panics if the total node count exceeds [`NodeId`] range.
pub fn disjoint_union(parts: &[&Graph]) -> Graph {
    let total_nodes: usize = parts.iter().map(|g| g.len()).sum();
    let total_arcs: usize = parts.iter().map(|g| g.arc_count()).sum();
    assert!(
        total_nodes <= NodeId::MAX as usize,
        "disjoint union of {total_nodes} nodes exceeds u32 node ids"
    );
    let mut offsets = Vec::with_capacity(total_nodes + 1);
    let mut adj = Vec::with_capacity(total_arcs);
    offsets.push(0usize);
    let mut node_base = 0 as NodeId;
    let mut arc_base = 0usize;
    for g in parts {
        for i in 0..g.len() as NodeId {
            for &j in g.neighbors(i) {
                adj.push(node_base + j);
            }
            offsets.push(arc_base + g.arc_base(i) + g.degree(i));
        }
        node_base += g.len() as NodeId;
        arc_base += g.arc_count();
    }
    Graph::from_csr(offsets, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{diameter, is_connected, is_regular};

    #[test]
    fn torus2d_csr_fast_path_matches_lattice() {
        for (r, c) in [(3, 3), (3, 5), (4, 7), (16, 16), (5, 32)] {
            let fast = torus2d(r, c);
            let generic = lattice(&[r, c], true);
            assert_eq!(fast, generic, "torus2d({r},{c}) diverges from lattice");
        }
    }

    #[test]
    fn erdos_renyi_sparse_shape() {
        let n = 2000;
        let p = 4.0 / n as f64;
        let g = erdos_renyi_sparse(n, p, 42);
        // Deterministic given the seed.
        assert_eq!(g, erdos_renyi_sparse(n, p, 42));
        // E[m] = p * n(n-1)/2 ≈ 2(n-1); allow a wide band.
        let m = g.edge_count();
        assert!(m > 2500 && m < 5500, "unexpected edge count {m}");
        for (u, v) in g.edges() {
            assert!(u < v && (v as usize) < n);
        }
        // Degenerate probabilities.
        assert_eq!(erdos_renyi_sparse(50, 0.0, 7).edge_count(), 0);
        assert_eq!(erdos_renyi_sparse(10, 1.0, 7), complete(10));
        assert!(erdos_renyi_sparse(0, 0.5, 7).is_empty());
    }

    #[test]
    fn bus_shape() {
        let g = bus(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn ring_shape() {
        let g = ring(6);
        assert!(is_regular(&g, 2));
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        ring(2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(7);
        assert_eq!(g.edge_count(), 21);
        assert!(is_regular(&g, 6));
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn star_and_tree() {
        let g = star(9);
        assert_eq!(g.degree(0), 8);
        assert_eq!(diameter(&g), Some(2));
        let t = binary_tree(7);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.degree(6), 1);
        assert!(is_connected(&t));
    }

    #[test]
    fn grid_and_torus2d() {
        let g = grid2d(3, 4);
        assert_eq!(g.len(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
        let t = torus2d(3, 4);
        assert!(is_regular(&t, 4));
        assert_eq!(t.edge_count(), 2 * 12);
    }

    #[test]
    fn torus3d_is_6_regular() {
        let g = torus3d(4, 4, 4);
        assert_eq!(g.len(), 64);
        assert!(is_regular(&g, 6));
        assert!(is_connected(&g));
        // each axis contributes n edges per node pair direction: 3*n edges
        assert_eq!(g.edge_count(), 3 * 64);
    }

    #[test]
    fn torus3d_wraparound_edges_exist() {
        let g = torus3d(4, 4, 4);
        // node (0,0,0) = 0 and node (3,0,0) = 3*16 = 48 are wrap neighbors
        assert!(g.has_edge(0, 48));
        assert!(g.has_edge(0, 12)); // (0,3,0) = 12
        assert!(g.has_edge(0, 3)); // (0,0,3) = 3
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(6);
        assert_eq!(g.len(), 64);
        assert!(is_regular(&g, 6));
        assert_eq!(diameter(&g), Some(6));
        assert!(g.has_edge(0b000000, 0b000100));
        assert!(!g.has_edge(0b000000, 0b000110));
    }

    #[test]
    fn hypercube_zero_dim() {
        let g = hypercube(0);
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn erdos_renyi_reproducible() {
        let a = erdos_renyi(40, 0.2, 7);
        let b = erdos_renyi(40, 0.2, 7);
        let c = erdos_renyi(40, 0.2, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // p=1 is the complete graph, p=0 empty
        assert_eq!(erdos_renyi(10, 1.0, 0).edge_count(), 45);
        assert_eq!(erdos_renyi(10, 0.0, 0).edge_count(), 0);
    }

    #[test]
    fn random_regular_is_regular_and_reproducible() {
        let g = random_regular(30, 4, 42);
        assert!(is_regular(&g, 4));
        assert_eq!(g, random_regular(30, 4, 42));
    }

    #[test]
    fn watts_strogatz_basics() {
        let g = watts_strogatz(50, 4, 0.0, 1);
        // beta = 0: pure ring lattice, 2-regular per side
        assert!(is_regular(&g, 4));
        assert_eq!(g.edge_count(), 100);
        let g = watts_strogatz(50, 4, 0.3, 1);
        assert_eq!(g, watts_strogatz(50, 4, 0.3, 1));
        // rewiring keeps the edge count (rewired, not added/removed)
        assert_eq!(g.edge_count(), 100);
        assert!(is_connected(&g));
        // shortcuts shrink the diameter vs the lattice
        let lattice_diam = diameter(&watts_strogatz(50, 4, 0.0, 1)).unwrap();
        let sw_diam = diameter(&g).unwrap();
        assert!(sw_diam < lattice_diam, "{sw_diam} vs {lattice_diam}");
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn watts_strogatz_odd_k_rejected() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }

    #[test]
    fn barabasi_albert_basics() {
        let g = barabasi_albert(200, 3, 7);
        assert_eq!(g.len(), 200);
        assert!(is_connected(&g));
        assert_eq!(g, barabasi_albert(200, 3, 7));
        // every non-seed node has degree >= m; hubs emerge well above it
        let max_deg = (0..200u32).map(|i| g.degree(i)).max().unwrap();
        let min_deg = (0..200u32).map(|i| g.degree(i)).min().unwrap();
        assert!(min_deg >= 3);
        assert!(max_deg >= 15, "expected a hub, max degree {max_deg}");
        // edge count: clique on m+1 plus m per added node
        assert_eq!(g.edge_count(), 3 * 4 / 2 + (200 - 4) * 3);
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn barabasi_albert_too_small() {
        let _ = barabasi_albert(3, 3, 0);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_odd_product_rejected() {
        random_regular(5, 3, 0);
    }

    #[test]
    fn disjoint_union_blocks_are_offset_copies() {
        let a = hypercube(2); // 4 nodes, 8 arcs
        let b = ring(5); // 5 nodes, 10 arcs
        let u = disjoint_union(&[&a, &b, &a]);
        assert_eq!(u.len(), 4 + 5 + 4);
        assert_eq!(u.arc_count(), 8 + 10 + 8);
        // Block 0 is a verbatim copy.
        for i in 0..a.len() as NodeId {
            assert_eq!(u.neighbors(i), a.neighbors(i));
            assert_eq!(u.arc_base(i), a.arc_base(i));
        }
        // Block 1's lists shift by 4, its arcs by 8.
        for i in 0..b.len() as NodeId {
            let shifted: Vec<NodeId> = b.neighbors(i).iter().map(|&j| j + 4).collect();
            assert_eq!(u.neighbors(4 + i), &shifted[..]);
            assert_eq!(u.arc_base(4 + i), 8 + b.arc_base(i));
        }
        // Block 2 shifts by 9 nodes / 18 arcs.
        for i in 0..a.len() as NodeId {
            let shifted: Vec<NodeId> = a.neighbors(i).iter().map(|&j| j + 9).collect();
            assert_eq!(u.neighbors(9 + i), &shifted[..]);
            assert_eq!(u.arc_base(9 + i), 18 + a.arc_base(i));
        }
        // No cross-block edges.
        assert!(!u.has_edge(0, 4));
        assert!(!is_connected(&u));
    }

    #[test]
    fn disjoint_union_of_one_is_identity() {
        let g = hypercube(3);
        assert_eq!(disjoint_union(&[&g]), g);
    }
}
