//! Structural graph properties.
//!
//! Gossip convergence results assume connectivity, and the paper's
//! complexity statements are in terms of topologies that admit
//! `O(log n)`-step parallel reductions (short diameter). These checks let
//! experiments and tests assert the preconditions instead of assuming them.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// `true` if the graph is connected (the empty graph counts as connected,
/// a single node trivially so).
pub fn is_connected(g: &Graph) -> bool {
    if g.len() <= 1 {
        return true;
    }
    let mut seen = vec![false; g.len()];
    let mut queue = VecDeque::new();
    seen[0] = true;
    queue.push_back(0 as NodeId);
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count == g.len()
}

/// `true` if every node has degree exactly `k`.
pub fn is_regular(g: &Graph, k: usize) -> bool {
    (0..g.len() as NodeId).all(|i| g.degree(i) == k)
}

/// Eccentricity of `src`: the BFS depth to the farthest reachable node,
/// or `None` if some node is unreachable.
fn eccentricity(g: &Graph, src: NodeId) -> Option<usize> {
    let mut dist = vec![usize::MAX; g.len()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    let mut reached = 1usize;
    let mut ecc = 0usize;
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                ecc = ecc.max(du + 1);
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    (reached == g.len()).then_some(ecc)
}

/// Exact diameter via all-sources BFS. `None` if disconnected. `O(n·m)` —
/// fine for the graph sizes tests exercise; experiments don't call this on
/// their hot path.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.is_empty() {
        return Some(0);
    }
    let mut d = 0usize;
    for src in 0..g.len() as NodeId {
        d = d.max(eccentricity(g, src)?);
    }
    Some(d)
}

/// Histogram of node degrees: `hist[k]` = number of nodes with degree `k`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max_deg = (0..g.len() as NodeId)
        .map(|i| g.degree(i))
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for i in 0..g.len() as NodeId {
        hist[g.degree(i)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{bus, complete, hypercube, ring};
    use crate::graph::GraphBuilder;

    #[test]
    fn connectivity() {
        assert!(is_connected(&ring(5)));
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3);
        assert!(!is_connected(&b.build()));
        assert!(is_connected(&GraphBuilder::new(1).build()));
        assert!(is_connected(&GraphBuilder::new(0).build()));
        // nodes with no edges at all
        assert!(!is_connected(&GraphBuilder::new(2).build()));
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&bus(10)), Some(9));
        assert_eq!(diameter(&complete(10)), Some(1));
        assert_eq!(diameter(&hypercube(4)), Some(4));
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        assert_eq!(diameter(&b.build()), None);
    }

    #[test]
    fn regularity() {
        assert!(is_regular(&ring(8), 2));
        assert!(!is_regular(&bus(8), 2)); // endpoints have degree 1
    }

    #[test]
    fn histogram() {
        let h = degree_histogram(&bus(5));
        assert_eq!(h, vec![0, 2, 3]); // 2 endpoints of degree 1, 3 inner of degree 2
    }

    #[test]
    fn histogram_empty() {
        assert_eq!(degree_histogram(&GraphBuilder::new(0).build()), vec![0]);
    }
}
