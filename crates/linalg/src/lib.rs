//! Minimal dense linear algebra for the distributed QR case study.
//!
//! The paper's Sec. IV evaluates a fully distributed modified Gram-Schmidt
//! QR factorization (dmGS). This crate supplies what that needs and no
//! more: a row-major [`Matrix`], the norms the paper's error metric uses
//! (`‖V − QR‖∞ / ‖V‖∞`), a *sequential* modified Gram-Schmidt reference
//! implementation to validate the distributed one against, and seeded
//! random matrix generation. Everything is plain `f64`; error *measurement*
//! helpers use compensated arithmetic from [`gr_numerics`] so the metric
//! itself does not pollute the quantity it measures.

mod matrix;
mod qr;

pub use matrix::Matrix;
pub use qr::{factorization_error, mgs_qr, orthogonality_error};
