//! Sequential modified Gram-Schmidt QR and the paper's error metrics.

use crate::matrix::Matrix;
use gr_numerics::sum::compensated_dot;

/// Thin QR factorization `V = Q·R` (`V: n×m`, `n ≥ m`) by modified
/// Gram-Schmidt — the sequential reference the distributed dmGS is
/// validated against (same algorithm, local arithmetic instead of gossip
/// reductions).
///
/// Returns `(Q, R)` with `Q: n×m` having orthonormal columns and `R: m×m`
/// upper triangular.
///
/// # Panics
/// Panics if `n < m` or a column is (numerically) linearly dependent
/// (zero pivot).
pub fn mgs_qr(v: &Matrix) -> (Matrix, Matrix) {
    let (n, m) = (v.rows(), v.cols());
    assert!(n >= m, "mgs_qr needs n >= m (got {n} x {m})");
    let mut q = v.clone();
    let mut r = Matrix::zeros(m, m);
    for k in 0..m {
        let qk = q.col(k);
        let rkk = qk.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(rkk > 0.0, "rank-deficient column {k}");
        r[(k, k)] = rkk;
        for i in 0..n {
            q[(i, k)] /= rkk;
        }
        let qk = q.col(k);
        for j in (k + 1)..m {
            let rkj: f64 = qk.iter().zip(q.col(j).iter()).map(|(a, b)| a * b).sum();
            r[(k, j)] = rkj;
            for i in 0..n {
                q[(i, j)] -= qk[i] * rkj;
            }
        }
    }
    (q, r)
}

/// The paper's Fig. 8 metric: `‖V − QR‖∞ / ‖V‖∞`.
pub fn factorization_error(v: &Matrix, q: &Matrix, r: &Matrix) -> f64 {
    let qr = q.matmul(r);
    v.sub(&qr).norm_inf() / v.norm_inf()
}

/// Orthogonality error `‖I − QᵀQ‖∞` (the companion metric the paper
/// mentions for dmGS).
pub fn orthogonality_error(q: &Matrix) -> f64 {
    let m = q.cols();
    let mut qtq = Matrix::zeros(m, m);
    for a in 0..m {
        let ca = q.col(a);
        for b in 0..m {
            let cb = q.col(b);
            qtq[(a, b)] = compensated_dot(&ca, &cb);
        }
    }
    Matrix::identity(m).sub(&qtq).norm_inf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs() {
        let v = Matrix::random_uniform(32, 8, 1);
        let (q, r) = mgs_qr(&v);
        assert!(factorization_error(&v, &q, &r) < 1e-14);
    }

    #[test]
    fn q_is_orthonormal() {
        let v = Matrix::random_uniform(64, 16, 2);
        let (q, _r) = mgs_qr(&v);
        assert!(orthogonality_error(&q) < 1e-13);
    }

    #[test]
    fn r_is_upper_triangular_with_positive_diagonal() {
        let v = Matrix::random_uniform(16, 5, 3);
        let (_q, r) = mgs_qr(&v);
        for i in 0..5 {
            assert!(r[(i, i)] > 0.0);
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn square_orthogonal_input_gives_identity_r_scale() {
        let v = Matrix::identity(6);
        let (q, r) = mgs_qr(&v);
        assert_eq!(q, Matrix::identity(6));
        assert_eq!(r, Matrix::identity(6));
    }

    #[test]
    fn single_column() {
        let v = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let (q, r) = mgs_qr(&v);
        assert!((r[(0, 0)] - 5.0).abs() < 1e-15);
        assert!((q[(0, 0)] - 0.6).abs() < 1e-15);
        assert!((q[(1, 0)] - 0.8).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "rank-deficient")]
    fn dependent_columns_detected() {
        let v = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let _ = mgs_qr(&v);
    }

    #[test]
    #[should_panic(expected = "n >= m")]
    fn wide_matrix_rejected() {
        let _ = mgs_qr(&Matrix::zeros(2, 3));
    }
}
