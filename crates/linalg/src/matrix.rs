//! Row-major dense matrix.

use rand::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix of `f64`, row-major.
///
/// Row-major layout matches the dmGS data distribution (each node owns one
/// or more *rows*), so distributing a matrix over nodes is slicing, not
/// gathering.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer/shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Seeded matrix with i.i.d. uniform `[-1, 1)` entries — the "random
    /// matrices V" of the paper's Fig. 8 study.
    pub fn random_uniform(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.random::<f64>() * 2.0 - 1.0)
            .collect();
        Matrix { rows, cols, data }
    }

    /// Seeded nearly-dependent matrix: columns are a shared random base
    /// vector plus `spread`-scaled independent perturbations, giving a
    /// condition number of roughly `1/spread`. Used to separate
    /// numerically stable from unstable orthogonalisation (MGS vs CGS).
    pub fn random_graded(rows: usize, cols: usize, spread: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<f64> = (0..rows).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect();
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = base[i] + spread * (rng.random::<f64>() * 2.0 - 1.0);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · rhs` with compensated inner products (the
    /// product is used for *error measurement* — `QR` in `‖V − QR‖` — so
    /// it must not add noise of its own).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // Transpose rhs once so inner products stream contiguously.
        let rt = rhs.transpose();
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                out[(i, j)] = gr_numerics::sum::compensated_dot(self.row(i), rt.row(j));
            }
        }
        out
    }

    /// Elementwise difference `self − rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// ∞-norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn identity_matmul() {
        let m = Matrix::random_uniform(4, 3, 1);
        let i = Matrix::identity(4);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::random_uniform(5, 3, 2);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 4)], m[(4, 2)]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(m.norm_inf(), 7.0);
        assert!((m.norm_fro() - 30.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn sub_and_zero() {
        let m = Matrix::random_uniform(3, 3, 3);
        let d = m.sub(&m);
        assert_eq!(d.norm_fro(), 0.0);
    }

    #[test]
    fn random_reproducible() {
        assert_eq!(
            Matrix::random_uniform(4, 4, 9),
            Matrix::random_uniform(4, 4, 9)
        );
        assert_ne!(
            Matrix::random_uniform(4, 4, 9),
            Matrix::random_uniform(4, 4, 10)
        );
        // entries within [-1, 1)
        let m = Matrix::random_uniform(10, 10, 11);
        assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn bad_matmul_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
