//! Floating-point substrate for the `gossip-reduce` workspace.
//!
//! The push-cancel-flow paper is, at its heart, a paper about what IEEE-754
//! arithmetic does to a theoretically exact distributed algorithm. Measuring
//! errors down to `1e-16` therefore needs tooling that is itself trustworthy
//! well below that level. This crate provides:
//!
//! * [`Dd`] — double-double ("compensated pair") arithmetic with roughly 31
//!   significant decimal digits, used to compute reference aggregates that
//!   experiments compare against;
//! * [`sum`] — compensated (Neumaier) and pairwise summation kernels used
//!   wherever the harness folds many floating-point values;
//! * [`bits`] — raw bit manipulation of `f64` values, the mechanism behind
//!   the simulator's bit-flip fault injector;
//! * [`stats`] — the order statistics (max / median / quantiles) every
//!   figure in the paper reports;
//! * [`error`] — relative-error metrics against high-precision references.
//!
//! Everything here is `no_std`-friendly in spirit (no allocation in the hot
//! paths) but the crate links `std` for `f64` math intrinsics.

pub mod bits;
pub mod dd;
pub mod error;
pub mod stats;
pub mod sum;

pub use dd::Dd;
pub use error::{max_relative_error, relative_error, RelErr};
pub use stats::Summary;
pub use sum::{neumaier_sum, pairwise_sum, CompensatedSum};
