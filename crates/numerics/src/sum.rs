//! Compensated and pairwise summation kernels.
//!
//! The experiment harness folds thousands-to-millions of `f64` values
//! (per-node estimates, residuals, squared errors). Naive left-to-right
//! summation would contaminate exactly the quantities the paper is about,
//! so every reduction in the harness goes through one of these kernels.

use crate::dd::two_sum;

/// A running Neumaier (improved Kahan–Babuška) compensated sum.
///
/// Error bound: `2·eps + O(n·eps²)` relative — independent of `n` to first
/// order, which is what lets the harness trust error measurements at the
/// `1e-16` level over tens of thousands of nodes.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompensatedSum {
    sum: f64,
    comp: f64,
    count: u64,
}

impl CompensatedSum {
    /// Start an empty sum.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let (s, e) = two_sum(self.sum, x);
        self.sum = s;
        self.comp += e;
        self.count += 1;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// Number of values added.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the added values (NaN if empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.value() / self.count as f64
    }

    /// Merge another compensated sum into this one (useful when partial
    /// sums are computed on worker threads).
    #[inline]
    pub fn merge(&mut self, other: &CompensatedSum) {
        let (s, e) = two_sum(self.sum, other.sum);
        self.sum = s;
        self.comp += e + other.comp;
        self.count += other.count;
    }
}

impl Extend<f64> for CompensatedSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Neumaier-compensated sum of a slice.
pub fn neumaier_sum(values: &[f64]) -> f64 {
    let mut acc = CompensatedSum::new();
    for &v in values {
        acc.add(v);
    }
    acc.value()
}

/// Pairwise (cascade) summation: `O(eps·log n)` error, cache-friendly, and
/// branch-predictable. Used where a strict compensated sum is overkill.
pub fn pairwise_sum(values: &[f64]) -> f64 {
    const BASE: usize = 64;
    fn rec(v: &[f64]) -> f64 {
        if v.len() <= BASE {
            v.iter().sum()
        } else {
            let mid = v.len() / 2;
            rec(&v[..mid]) + rec(&v[mid..])
        }
    }
    rec(values)
}

/// Compensated dot product (each product compensated via FMA residual,
/// running sum via Neumaier).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn compensated_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product of unequal-length slices");
    let mut acc = CompensatedSum::new();
    for (&x, &y) in a.iter().zip(b) {
        let p = x * y;
        let e = f64::mul_add(x, y, -p);
        acc.add(p);
        acc.add(e);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dd::dd_sum;

    #[test]
    fn neumaier_handles_classic_cancellation() {
        // 1 + 1e100 + 1 - 1e100 = 2; naive and Kahan both return 0.
        let v = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(neumaier_sum(&v), 2.0);
    }

    #[test]
    fn compensated_matches_dd_on_random_data() {
        // Deterministic pseudo-random data without pulling rand in: LCG.
        let mut x = 0x12345678u64;
        let mut v: Vec<f64> = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1e6;
            v.push(f);
        }
        let reference = dd_sum(&v).to_f64();
        let comp = neumaier_sum(&v);
        let pw = pairwise_sum(&v);
        assert_eq!(
            comp, reference,
            "compensated sum should round-trip the dd reference"
        );
        let rel = ((pw - reference) / reference).abs();
        assert!(rel < 1e-12, "pairwise error {rel}");
    }

    #[test]
    fn pairwise_small_and_empty() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[3.5]), 3.5);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(pairwise_sum(&v), 5050.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let v: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e8).collect();
        let mut whole = CompensatedSum::new();
        whole.extend(v.iter().copied());
        let mut a = CompensatedSum::new();
        let mut b = CompensatedSum::new();
        a.extend(v[..500].iter().copied());
        b.extend(v[500..].iter().copied());
        a.merge(&b);
        assert!((a.value() - whole.value()).abs() <= 1e-6 * whole.value().abs().max(1.0));
        assert_eq!(a.count(), 1000);
    }

    #[test]
    fn mean_of_constant() {
        let mut s = CompensatedSum::new();
        s.extend(std::iter::repeat_n(2.5, 17));
        assert_eq!(s.mean(), 2.5);
    }

    #[test]
    fn compensated_dot_exact_cancellation() {
        // x·y where products cancel catastrophically.
        let a = [1e100, 1.0, -1e100];
        let b = [1.0, 3.0, 1.0];
        assert_eq!(compensated_dot(&a, &b), 3.0);
    }
}
