//! Raw bit-level utilities for `f64` values.
//!
//! Two consumers:
//!
//! * the fault injector in `gr-netsim` flips individual bits of in-flight
//!   payloads to model soft errors (the paper's "bit flips");
//! * tests measure distances between nearly-equal results in ULPs, which is
//!   far more robust than ad-hoc epsilon comparisons.

/// Flip bit `bit` (0 = least-significant significand bit, 63 = sign bit) of
/// an `f64` value.
///
/// # Panics
/// Panics if `bit >= 64`.
#[inline]
pub fn flip_bit(x: f64, bit: u32) -> f64 {
    assert!(bit < 64, "f64 has 64 bits, got index {bit}");
    f64::from_bits(x.to_bits() ^ (1u64 << bit))
}

/// Number of bits in an `f64` (for generic corruption code).
pub const F64_BITS: u32 = 64;

/// Distance between two finite `f64` values in units-in-the-last-place.
///
/// Uses the standard monotone mapping of IEEE-754 bit patterns onto a signed
/// integer lattice; returns `u64::MAX` if either input is NaN.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn lattice(x: f64) -> i64 {
        let b = x.to_bits() as i64;
        if b < 0 {
            i64::MIN.wrapping_sub(b)
        } else {
            b
        }
    }
    lattice(a).abs_diff(lattice(b))
}

/// `true` if `a` and `b` are within `max_ulps` ULPs of each other.
#[inline]
pub fn approx_eq_ulps(a: f64, b: f64, max_ulps: u64) -> bool {
    ulp_distance(a, b) <= max_ulps
}

/// The unit roundoff of `f64` (half the machine epsilon): `2^-53`.
pub const UNIT_ROUNDOFF: f64 = f64::EPSILON / 2.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_sign_bit_negates() {
        assert_eq!(flip_bit(1.5, 63), -1.5);
        assert_eq!(flip_bit(-2.0, 63), 2.0);
    }

    #[test]
    fn flip_low_bit_changes_by_one_ulp() {
        let x = 1.0;
        let y = flip_bit(x, 0);
        assert_eq!(ulp_distance(x, y), 1);
    }

    #[test]
    fn flip_is_involutive() {
        for bit in [0, 7, 31, 52, 60, 63] {
            let x = 123.456;
            assert_eq!(flip_bit(flip_bit(x, bit), bit), x);
        }
    }

    #[test]
    #[should_panic(expected = "64 bits")]
    fn flip_out_of_range_panics() {
        let _ = flip_bit(1.0, 64);
    }

    #[test]
    fn flip_exponent_bit_is_catastrophic() {
        // Flipping a high exponent bit changes the magnitude wildly — this
        // is why the paper cares about bit-flip tolerance.
        let x = 1.0;
        let y = flip_bit(x, 62);
        assert!(y.abs() > 1e300 || y.abs() < 1e-300);
    }

    #[test]
    fn ulp_distance_across_zero() {
        let a = f64::from_bits(1); // smallest positive subnormal
        let b = -f64::from_bits(1);
        assert_eq!(ulp_distance(a, b), 2);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
    }

    #[test]
    fn ulp_distance_nan() {
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn approx_eq_neighbouring_values() {
        let a = 0.1 + 0.2;
        assert!(approx_eq_ulps(a, 0.3, 1));
        assert!(!approx_eq_ulps(1.0, 1.0 + 1e-10, 4));
    }
}
