//! Relative-error metrics against high-precision references.
//!
//! The paper's accuracy requirement (Sec. II-B): the approximate aggregates
//! `r̃_i` of an all-to-all reduction with exact result `r` should satisfy
//! `max_i |(r̃_i − r)/r| ≤ c(n)·ε_mach`. These helpers compute exactly that
//! quantity, with the exact result carried as a [`Dd`].

use crate::dd::Dd;
use crate::stats::Summary;
use crate::sum::CompensatedSum;

/// Relative error of `approx` against a double-double reference.
///
/// A NaN estimate (e.g. a push-sum node whose weight is still zero, or a
/// node corrupted by an injected bit flip) counts as *infinite* error — it
/// is unusable, and convergence checks must see that, not silently skip it.
///
/// If the reference is exactly zero the *absolute* error is returned
/// instead (the conventional fallback; the paper's workloads never aggregate
/// to exactly zero, but fault-injection tests can).
pub fn relative_error(approx: f64, reference: Dd) -> f64 {
    if !approx.is_finite() {
        // NaN or ±∞: the estimate is destroyed. (±∞ must be caught here:
        // Dd division of an infinite numerator produces NaN, which would
        // otherwise *vanish* in downstream `f64::max` folds.)
        return f64::INFINITY;
    }
    let diff = (Dd::from_f64(approx) - reference).abs();
    if reference.is_zero() {
        diff.to_f64()
    } else {
        (diff / reference.abs()).to_f64()
    }
}

/// Per-population relative-error summary: the "maximal local error" and
/// "median local error" series plotted throughout the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelErr {
    /// `max_i |(r̃_i − r)/r|`
    pub max: f64,
    /// median over nodes of the local relative error
    pub median: f64,
    /// mean over nodes of the local relative error
    pub mean: f64,
}

impl RelErr {
    /// Compute the error summary of a set of local estimates against a
    /// common reference.
    pub fn of<I: IntoIterator<Item = f64>>(estimates: I, reference: Dd) -> RelErr {
        let s = Summary::from_iter(estimates.into_iter().map(|e| relative_error(e, reference)));
        RelErr {
            max: s.max(),
            median: s.median(),
            mean: s.mean(),
        }
    }

    /// As [`RelErr::of`], but sorting inside the caller-supplied scratch
    /// buffer instead of allocating one — the per-sample path of the run
    /// loop calls this every few rounds and stays allocation-free once the
    /// buffer is warm. Bitwise-identical to [`RelErr::of`]: it replicates
    /// the [`Summary`] NaN filter, its compensated mean, and its
    /// linear-interpolation quantile (`pos = q·(n−1)`, floor/ceil bracket,
    /// lerp) operation for operation.
    pub fn of_with_scratch<I: IntoIterator<Item = f64>>(
        estimates: I,
        reference: Dd,
        scratch: &mut Vec<f64>,
    ) -> RelErr {
        scratch.clear();
        let mut acc = CompensatedSum::new();
        for x in estimates.into_iter().map(|e| relative_error(e, reference)) {
            if !x.is_nan() {
                acc.add(x);
                scratch.push(x);
            }
        }
        scratch.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
        let n = scratch.len();
        let max = scratch.last().copied().unwrap_or(f64::NAN);
        let mean = if n == 0 {
            f64::NAN
        } else {
            acc.value() / n as f64
        };
        let median = match n {
            0 => f64::NAN,
            1 => scratch[0],
            _ => {
                let pos = 0.5 * (n - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                scratch[lo] * (1.0 - frac) + scratch[hi] * frac
            }
        };
        RelErr { max, median, mean }
    }
}

/// Max over nodes of the local relative error — the headline metric of
/// Figs. 3 and 6.
pub fn max_relative_error<I: IntoIterator<Item = f64>>(estimates: I, reference: Dd) -> f64 {
    RelErr::of(estimates, reference).max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimate_has_zero_error() {
        assert_eq!(relative_error(2.0, Dd::from_f64(2.0)), 0.0);
    }

    #[test]
    fn one_ulp_off_is_about_eps() {
        let r = Dd::from_f64(1.0);
        let e = relative_error(1.0 + f64::EPSILON, r);
        assert!((e - f64::EPSILON).abs() < 1e-30);
    }

    #[test]
    fn zero_reference_falls_back_to_absolute() {
        assert_eq!(relative_error(1e-3, Dd::ZERO), 1e-3);
    }

    #[test]
    fn relerr_summary() {
        let r = Dd::from_f64(10.0);
        let e = RelErr::of([10.0, 11.0, 9.0], r);
        assert!((e.max - 0.1).abs() < 1e-15);
        assert!((e.median - 0.1).abs() < 1e-15);
    }

    #[test]
    fn max_metric_matches_by_hand() {
        let r = Dd::from_f64(4.0);
        let m = max_relative_error([4.0, 4.4], r);
        assert!((m - 0.1).abs() < 1e-15);
    }

    #[test]
    fn nan_estimate_counts_as_infinite_error() {
        let r = Dd::from_f64(1.0);
        let e = RelErr::of([1.0, f64::NAN, 2.0], r);
        assert_eq!(e.max, f64::INFINITY);
        assert_eq!(e.median, 1.0);
    }

    #[test]
    fn infinite_estimate_counts_as_infinite_error() {
        // Regression: Dd division of ±∞ yields NaN, which f64::max folds
        // would silently drop — a diverged run must read as error = ∞.
        let r = Dd::from_f64(0.5);
        assert_eq!(relative_error(f64::INFINITY, r), f64::INFINITY);
        assert_eq!(relative_error(f64::NEG_INFINITY, r), f64::INFINITY);
    }

    #[test]
    fn reference_below_f64_resolution() {
        // reference = 1 + 1e-25: an estimate of exactly 1.0 has relative
        // error ~1e-25, which plain f64 math could not resolve.
        let r = Dd::from_f64(1.0) + 1e-25;
        let e = relative_error(1.0, r);
        assert!((e - 1e-25).abs() < 1e-35, "got {e}");
    }

    #[test]
    fn scratch_variant_is_bitwise_identical() {
        let cases: [&[f64]; 5] = [
            &[],
            &[3.5],
            &[1.0, f64::NAN, 2.0, -7.25, f64::INFINITY],
            &[10.0, 11.0, 9.0, 10.5],
            &[0.0, -0.0, 1e-300, 1e300],
        ];
        let refs = [Dd::ZERO, Dd::from_f64(10.0), Dd::from_f64(-2.5)];
        let mut scratch = Vec::new();
        for est in cases {
            for r in refs {
                let a = RelErr::of(est.iter().copied(), r);
                let b = RelErr::of_with_scratch(est.iter().copied(), r, &mut scratch);
                assert_eq!(a.max.to_bits(), b.max.to_bits());
                assert_eq!(a.median.to_bits(), b.median.to_bits());
                assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            }
        }
    }
}
