//! Double-double arithmetic.
//!
//! A [`Dd`] represents a real number as an unevaluated sum `hi + lo` of two
//! `f64` values with `|lo| <= ulp(hi)/2`. This gives roughly 106 bits of
//! significand (~31 decimal digits) — ample headroom for computing reference
//! values against which `f64` experiments are scored, and for checking the
//! paper's claim that push-flow and push-cancel-flow are *exactly*
//! equivalent in precise-enough arithmetic.
//!
//! The algorithms are the classical error-free transformations of Dekker and
//! Knuth (`two_sum`, `two_prod`) as popularised by Hida, Li & Bailey's QD
//! library. `two_prod` uses the fused multiply-add, which Rust lowers to a
//! hardware FMA on every target this repo cares about.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Error-free transformation: returns `(s, e)` with `s = fl(a + b)` and
/// `a + b = s + e` exactly. No assumption on the magnitudes of `a` and `b`
/// (Knuth's TwoSum, 6 flops).
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free transformation assuming `|a| >= |b|` (Dekker's FastTwoSum,
/// 3 flops). The caller must guarantee the magnitude ordering (or that
/// either value is zero); otherwise the error term is wrong.
#[inline]
pub fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Error-free transformation: returns `(p, e)` with `p = fl(a * b)` and
/// `a * b = p + e` exactly, using FMA.
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = f64::mul_add(a, b, -p);
    (p, e)
}

/// A double-double number: the unevaluated, non-overlapping sum `hi + lo`.
///
/// ```
/// use gr_numerics::Dd;
/// // 0.1 + 0.2 != 0.3 in f64; in Dd the discrepancy is resolvable:
/// let x = Dd::from_f64(0.1) + Dd::from_f64(0.2);
/// let err = (x - Dd::from_f64(0.3)).abs();
/// assert!(err.to_f64() > 0.0);        // the f64 inputs really differ
/// assert!(err.to_f64() < 1e-16);      // ... by less than one ulp of 0.3
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Dd {
    hi: f64,
    lo: f64,
}

impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// One.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };

    /// Construct from a single `f64` (exact).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Dd { hi: x, lo: 0.0 }
    }

    /// Construct from an unnormalised pair `a + b`.
    #[inline]
    pub fn from_sum(a: f64, b: f64) -> Self {
        let (hi, lo) = two_sum(a, b);
        Dd { hi, lo }
    }

    /// The high (leading) component.
    #[inline]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// The low (trailing) component.
    #[inline]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Round to the nearest `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// `true` if the value is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.hi == 0.0 && self.lo == 0.0
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.hi.is_nan() || self.lo.is_nan()
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            -self
        } else {
            self
        }
    }

    /// Square root via one Newton step on the `f64` seed (Karp & Markstein).
    /// Accurate to the full double-double precision for finite positive
    /// inputs; returns NaN for negative inputs and zero for zero.
    pub fn sqrt(self) -> Self {
        if self.is_zero() {
            return Dd::ZERO;
        }
        if self.hi < 0.0 {
            return Dd::from_f64(f64::NAN);
        }
        let x = 1.0 / self.hi.sqrt();
        let ax = self.hi * x;
        let ax_dd = Dd::from_f64(ax);
        let err = (self - ax_dd * ax_dd).hi;
        Dd::from_sum(ax, err * (x * 0.5))
    }

    /// Multiply by an exact power of two (error-free).
    #[inline]
    pub fn scale_pow2(self, p: i32) -> Self {
        let f = (p as f64).exp2();
        Dd {
            hi: self.hi * f,
            lo: self.lo * f,
        }
    }
}

impl From<f64> for Dd {
    #[inline]
    fn from(x: f64) -> Self {
        Dd::from_f64(x)
    }
}

impl From<u32> for Dd {
    #[inline]
    fn from(x: u32) -> Self {
        Dd::from_f64(x as f64)
    }
}

impl From<i64> for Dd {
    /// Exact for all `i64` values (split through two 32-bit halves).
    fn from(x: i64) -> Self {
        let hi = (x >> 32) as f64 * 4294967296.0;
        let lo = (x & 0xffff_ffff) as f64;
        Dd::from_sum(hi, lo)
    }
}

impl Neg for Dd {
    type Output = Dd;
    #[inline]
    fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }
}

impl Add for Dd {
    type Output = Dd;
    /// Full-accuracy double-double addition (the "sloppy" variant is not
    /// used anywhere in this workspace).
    #[inline]
    fn add(self, rhs: Dd) -> Dd {
        let (s1, e1) = two_sum(self.hi, rhs.hi);
        let (s2, e2) = two_sum(self.lo, rhs.lo);
        let lo = e1 + s2;
        let (s1, lo) = quick_two_sum(s1, lo);
        let lo = lo + e2;
        let (hi, lo) = quick_two_sum(s1, lo);
        Dd { hi, lo }
    }
}

impl Add<f64> for Dd {
    type Output = Dd;
    #[inline]
    fn add(self, rhs: f64) -> Dd {
        let (s, e) = two_sum(self.hi, rhs);
        let lo = e + self.lo;
        let (hi, lo) = quick_two_sum(s, lo);
        Dd { hi, lo }
    }
}

impl Sub for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, rhs: Dd) -> Dd {
        self + (-rhs)
    }
}

impl Sub<f64> for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, rhs: f64) -> Dd {
        self + (-rhs)
    }
}

impl Mul for Dd {
    type Output = Dd;
    #[inline]
    fn mul(self, rhs: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, rhs.hi);
        let e = e + (self.hi * rhs.lo + self.lo * rhs.hi);
        let (hi, lo) = quick_two_sum(p, e);
        Dd { hi, lo }
    }
}

impl Mul<f64> for Dd {
    type Output = Dd;
    #[inline]
    fn mul(self, rhs: f64) -> Dd {
        let (p, e) = two_prod(self.hi, rhs);
        let e = e + self.lo * rhs;
        let (hi, lo) = quick_two_sum(p, e);
        Dd { hi, lo }
    }
}

impl Div for Dd {
    type Output = Dd;
    fn div(self, rhs: Dd) -> Dd {
        // Long division: two quotient refinement steps.
        let q1 = self.hi / rhs.hi;
        let r = self - rhs * q1;
        let q2 = r.hi / rhs.hi;
        let r = r - rhs * q2;
        let q3 = r.hi / rhs.hi;
        let (hi, lo) = quick_two_sum(q1, q2);
        Dd { hi, lo } + q3
    }
}

impl Div<f64> for Dd {
    type Output = Dd;
    #[inline]
    fn div(self, rhs: f64) -> Dd {
        self / Dd::from_f64(rhs)
    }
}

impl AddAssign for Dd {
    #[inline]
    fn add_assign(&mut self, rhs: Dd) {
        *self = *self + rhs;
    }
}
impl AddAssign<f64> for Dd {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}
impl SubAssign for Dd {
    #[inline]
    fn sub_assign(&mut self, rhs: Dd) {
        *self = *self - rhs;
    }
}
impl MulAssign for Dd {
    #[inline]
    fn mul_assign(&mut self, rhs: Dd) {
        *self = *self * rhs;
    }
}
impl DivAssign for Dd {
    #[inline]
    fn div_assign(&mut self, rhs: Dd) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Dd {
    fn partial_cmp(&self, other: &Dd) -> Option<Ordering> {
        match self.hi.partial_cmp(&other.hi) {
            Some(Ordering::Equal) => self.lo.partial_cmp(&other.lo),
            ord => ord,
        }
    }
}

impl Sum for Dd {
    fn sum<I: Iterator<Item = Dd>>(iter: I) -> Dd {
        iter.fold(Dd::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Dd> for Dd {
    fn sum<I: Iterator<Item = &'a Dd>>(iter: I) -> Dd {
        iter.fold(Dd::ZERO, |a, b| a + *b)
    }
}

impl fmt::Display for Dd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display the rounded f64; debug formatting shows both components.
        write!(f, "{}", self.to_f64())
    }
}

/// Sum a slice of `f64` values exactly into a double-double accumulator.
pub fn dd_sum(values: &[f64]) -> Dd {
    let mut acc = Dd::ZERO;
    for &v in values {
        acc += v;
    }
    acc
}

/// Dot product of two `f64` slices accumulated in double-double precision.
///
/// Each elementwise product is formed with an error-free `two_prod`, so the
/// result carries ~2e-32 relative error — effectively exact relative to the
/// `f64` data.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dd_dot(a: &[f64], b: &[f64]) -> Dd {
    assert_eq!(a.len(), b.len(), "dot product of unequal-length slices");
    let mut acc = Dd::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        let (p, e) = two_prod(x, y);
        acc += Dd::from_sum(p, e);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Dd, b: Dd, tol: f64) {
        let d = (a - b).abs();
        let scale = b.abs().to_f64().max(1.0);
        assert!(
            d.to_f64() <= tol * scale,
            "dd values differ: {a:?} vs {b:?} (diff {})",
            d.to_f64()
        );
    }

    #[test]
    fn two_sum_is_error_free() {
        let a = 1.0;
        let b = 1e-30;
        let (s, e) = two_sum(a, b);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-30);
    }

    #[test]
    fn two_prod_is_error_free() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 - f64::EPSILON;
        let (p, e) = two_prod(a, b);
        // a*b = 1 - eps^2 exactly; p rounds to 1.0, e must capture -eps^2.
        assert_eq!(p, 1.0);
        assert_eq!(e, -f64::EPSILON * f64::EPSILON);
    }

    #[test]
    fn addition_keeps_tiny_terms() {
        let x = Dd::from_f64(1.0) + 1e-25;
        assert_eq!(x.hi(), 1.0);
        assert_eq!(x.lo(), 1e-25);
        let y = x - 1.0;
        assert_eq!(y.to_f64(), 1e-25);
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = Dd::from_f64(3.0) + 1e-20;
        let b = Dd::from_f64(7.0) - 3e-21;
        let c = a * b / b;
        assert_close(c, a, 1e-30);
    }

    #[test]
    fn sqrt_of_two_squares() {
        let two = Dd::from_f64(2.0);
        let r = two.sqrt();
        assert_close(r * r, two, 1e-31);
    }

    #[test]
    fn sqrt_edge_cases() {
        assert!(Dd::from_f64(-1.0).sqrt().is_nan());
        assert!(Dd::ZERO.sqrt().is_zero());
    }

    #[test]
    fn i64_conversion_exact() {
        let v: i64 = (1 << 62) + 12345;
        let d = Dd::from(v);
        // hi+lo must reconstruct the integer exactly.
        let back = d.hi() as i128 + d.lo() as i128;
        assert_eq!(back, v as i128);
    }

    #[test]
    fn harmonic_series_beats_f64() {
        // Sum 1/k for k=1..=1e5 in f64 vs Dd; compare against Dd of the
        // reversed (better-conditioned ascending) order.
        let n = 100_000u32;
        let mut f = 0.0f64;
        let mut d = Dd::ZERO;
        for k in 1..=n {
            f += 1.0 / k as f64;
            d += Dd::ONE / Dd::from(k);
        }
        let mut d_rev = Dd::ZERO;
        for k in (1..=n).rev() {
            d_rev += Dd::ONE / Dd::from(k);
        }
        let dd_err = (d - d_rev).abs().to_f64();
        let f_err = (Dd::from_f64(f) - d_rev).abs().to_f64();
        assert!(dd_err < 1e-25, "dd error {dd_err}");
        assert!(f_err > dd_err * 1e6, "f64 should be much worse: {f_err}");
    }

    #[test]
    fn ordering() {
        let a = Dd::from_f64(1.0);
        let b = Dd::from_f64(1.0) + 1e-30;
        assert!(a < b);
        assert!(b > a);
        assert!(a <= a);
    }

    #[test]
    fn dd_dot_matches_exact_small_case() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dd_dot(&a, &b).to_f64(), 32.0);
    }

    #[test]
    fn abs_and_neg() {
        let x = Dd::from_f64(-2.0) - 1e-22;
        assert!(x.abs() > Dd::from_f64(2.0));
        assert_eq!((-x).to_f64(), x.abs().to_f64());
    }

    #[test]
    fn scale_pow2_exact() {
        let x = Dd::from_f64(3.0) + 1e-20;
        let y = x.scale_pow2(10);
        assert_eq!(y.hi(), 3072.0);
        assert_eq!(y.lo(), 1e-20 * 1024.0);
    }
}
