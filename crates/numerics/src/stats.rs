//! Descriptive statistics over `f64` samples.
//!
//! Every figure in the paper reports order statistics over the per-node
//! local errors ("maximal local error", "median local error"), and Fig. 8
//! averages over 50 runs. This module provides exactly those reductions
//! with NaN-safe, deterministic semantics.

use crate::sum::CompensatedSum;

/// A one-pass + sort summary of a sample of `f64` values.
///
/// NaN values are counted separately and excluded from the order statistics
/// so a single corrupted node (e.g. after an injected bit flip in an
/// exponent) cannot silently poison a whole experiment series.
#[derive(Clone, Debug)]
pub struct Summary {
    sorted: Vec<f64>,
    nan_count: usize,
    sum: f64,
}

impl Summary {
    /// Build a summary from any iterator of samples.
    #[allow(clippy::should_implement_trait)] // deliberate inherent name; no FromIterator impl exists
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut sorted: Vec<f64> = Vec::new();
        let mut nan_count = 0usize;
        let mut acc = CompensatedSum::new();
        for x in iter {
            if x.is_nan() {
                nan_count += 1;
            } else {
                acc.add(x);
                sorted.push(x);
            }
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
        Summary {
            sorted,
            nan_count,
            sum: acc.value(),
        }
    }

    /// Number of non-NaN samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if no non-NaN samples were supplied.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Number of NaN samples that were filtered out.
    pub fn nan_count(&self) -> usize {
        self.nan_count
    }

    /// Smallest sample (NaN if empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    /// Largest sample (NaN if empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// Compensated mean (NaN if empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            f64::NAN
        } else {
            self.sum / self.sorted.len() as f64
        }
    }

    /// Median (NaN if empty). For even sample counts, the mean of the two
    /// central order statistics.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Linear-interpolation quantile, `q` in `[0, 1]` (NaN if empty).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        let n = self.sorted.len();
        if n == 0 {
            return f64::NAN;
        }
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Sample standard deviation (NaN for fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return f64::NAN;
        }
        let m = self.mean();
        let mut acc = CompensatedSum::new();
        for &x in &self.sorted {
            let d = x - m;
            acc.add(d * d);
        }
        (acc.value() / (n - 1) as f64).sqrt()
    }

    /// The sorted samples (NaNs removed).
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Geometric mean of strictly positive samples (NaN if empty or any sample
/// is non-positive). Used when averaging errors that span many orders of
/// magnitude, as in the paper's accuracy-vs-scale figures.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || v.is_nan()) {
        return f64::NAN;
    }
    let mut acc = CompensatedSum::new();
    for &v in values {
        acc.add(v.ln());
    }
    (acc.value() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_iter([3.0, 1.0, 2.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn even_count_median_interpolates() {
        let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn quantiles() {
        let s = Summary::from_iter((0..=100).map(f64::from));
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(s.quantile(0.25), 25.0);
    }

    #[test]
    fn nan_filtering() {
        let s = Summary::from_iter([1.0, f64::NAN, 3.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.nan_count(), 1);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn empty_summary_is_nan_everywhere() {
        let s = Summary::from_iter(std::iter::empty());
        assert!(s.is_empty());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert!(s.mean().is_nan());
        assert!(s.median().is_nan());
    }

    #[test]
    fn std_dev_known_value() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // population variance 4, sample variance 32/7
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantile_out_of_range() {
        Summary::from_iter([1.0]).quantile(1.5);
    }

    #[test]
    fn geometric_mean_spanning_magnitudes() {
        let g = geometric_mean(&[1e-16, 1e-12, 1e-8]);
        assert!((g - 1e-12).abs() / 1e-12 < 1e-10);
        assert!(geometric_mean(&[1.0, 0.0]).is_nan());
        assert!(geometric_mean(&[]).is_nan());
    }
}
