//! Property-based tests of the double-double substrate — the measurement
//! foundation everything else trusts.

use gr_numerics::dd::{dd_dot, dd_sum, two_prod, two_sum};
use gr_numerics::Dd;
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    // Moderate range: keeps products/sums far from overflow so the
    // error-free transformations' preconditions hold.
    -1e120f64..1e120
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TwoSum is an error-free transformation: s + e == a + b exactly
    /// (verified in Dd, which can hold the exact sum of two f64).
    #[test]
    fn two_sum_error_free(a in finite(), b in finite()) {
        let (s, e) = two_sum(a, b);
        let exact = Dd::from_f64(a) + Dd::from_f64(b);
        let recon = Dd::from_sum(s, e);
        prop_assert_eq!(exact.hi().to_bits(), recon.hi().to_bits());
        prop_assert_eq!(exact.lo().to_bits(), recon.lo().to_bits());
    }

    /// TwoProd is error-free: p + e == a·b exactly.
    #[test]
    fn two_prod_error_free(a in -1e100f64..1e100, b in -1e100f64..1e100) {
        let (p, e) = two_prod(a, b);
        let exact = Dd::from_f64(a) * Dd::from_f64(b);
        let recon = Dd::from_sum(p, e);
        // dd multiplication of two plain f64 is itself exact (one two_prod)
        prop_assert_eq!(exact.hi().to_bits(), recon.hi().to_bits());
        prop_assert_eq!(exact.lo().to_bits(), recon.lo().to_bits());
    }

    /// Dd addition is commutative bit-for-bit.
    #[test]
    fn dd_add_commutes(a in finite(), b in finite(), c in -1e-10f64..1e-10) {
        let x = Dd::from_f64(a) + c;
        let y = Dd::from_f64(b) - c;
        let l = x + y;
        let r = y + x;
        prop_assert_eq!(l.hi().to_bits(), r.hi().to_bits());
        prop_assert_eq!(l.lo().to_bits(), r.lo().to_bits());
    }

    /// a + b − b recovers a to double-double precision.
    #[test]
    fn dd_add_sub_roundtrip(a in -1e50f64..1e50, b in -1e50f64..1e50) {
        let x = Dd::from_f64(a);
        let y = Dd::from_f64(b);
        let back = (x + y) - y;
        let err = (back - x).abs().to_f64();
        let scale = a.abs().max(b.abs()).max(1.0);
        prop_assert!(err <= 1e-30 * scale, "err {err}");
    }

    /// (a · b) / b recovers a to ~1e-30 relative.
    #[test]
    fn dd_mul_div_roundtrip(a in -1e50f64..1e50, b in -1e50f64..1e50) {
        prop_assume!(b.abs() > 1e-50);
        let x = Dd::from_f64(a);
        let y = Dd::from_f64(b);
        let back = (x * y) / y;
        let err = (back - x).abs().to_f64();
        prop_assert!(err <= 1e-28 * a.abs().max(1.0), "err {err}");
    }

    /// sqrt(x)² == x to double-double precision, for positive x.
    #[test]
    fn dd_sqrt_squares_back(a in 1e-100f64..1e100) {
        let x = Dd::from_f64(a);
        let r = x.sqrt();
        let err = ((r * r) - x).abs().to_f64();
        prop_assert!(err <= 1e-30 * a, "err {err}");
    }

    /// dd_sum is permutation-invariant to well below f64 precision.
    #[test]
    fn dd_sum_order_independent(mut v in proptest::collection::vec(-1e80f64..1e80, 2..40)) {
        let fwd = dd_sum(&v);
        v.reverse();
        let rev = dd_sum(&v);
        let err = (fwd - rev).abs().to_f64();
        let scale = v.iter().map(|x| x.abs()).fold(1.0, f64::max);
        prop_assert!(err <= 1e-28 * scale, "err {err}");
    }

    /// dd_dot matches the dd_sum of elementwise exact products.
    #[test]
    fn dd_dot_consistent_with_products(
        a in proptest::collection::vec(-1e50f64..1e50, 1..20),
        b0 in -1e50f64..1e50,
    ) {
        let b: Vec<f64> = a.iter().map(|_| b0).collect();
        let dot = dd_dot(&a, &b);
        let mut acc = Dd::ZERO;
        for &x in &a {
            acc += Dd::from_f64(x) * Dd::from_f64(b0);
        }
        let err = (dot - acc).abs().to_f64();
        let scale = acc.abs().to_f64().max(1.0);
        prop_assert!(err <= 1e-25 * scale, "err {err}");
    }

    /// Ordering is total on the generated (finite) values and agrees with
    /// subtraction's sign.
    #[test]
    fn dd_ordering_agrees_with_difference(a in finite(), b in finite(), da in -1.0f64..1.0) {
        let x = Dd::from_f64(a) + da * 1e-20;
        let y = Dd::from_f64(b);
        let diff = (x - y).to_f64();
        if diff > 0.0 {
            prop_assert!(x > y);
        } else if diff < 0.0 {
            prop_assert!(x < y);
        }
    }
}
