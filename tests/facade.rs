//! The public facade: everything a downstream user reaches through
//! `gossip_reduce::*` is wired and minimally usable.

use gossip_reduce::*;

#[test]
fn all_subsystems_reachable_through_facade() {
    // topology
    let g = topology::ring(6);
    assert!(topology::is_connected(&g));

    // numerics
    let d = numerics::Dd::from_f64(1.5) + 0.25;
    assert_eq!(d.to_f64(), 1.75);
    assert_eq!(numerics::neumaier_sum(&[1.0, 2.0]), 3.0);

    // reduction + netsim
    let data = reduction::InitialData::with_kind(
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        reduction::AggregateKind::Average,
    );
    let p = reduction::PushCancelFlow::new(&g, &data);
    let mut sim = netsim::Simulator::new(&g, p, netsim::FaultPlan::none(), 1);
    sim.run(300);
    use reduction::ReductionProtocol;
    assert!((sim.protocol().scalar_estimate(0) - 3.5).abs() < 1e-12);

    // linalg + dmgs
    let v = linalg::Matrix::random_uniform(6, 3, 1);
    let (q, r) = linalg::mgs_qr(&v);
    assert!(linalg::factorization_error(&v, &q, &r) < 1e-14);
    let cfg = dmgs::DmgsConfig::paper(
        reduction::Algorithm::PushCancelFlow(reduction::PhiMode::Eager),
        1,
    );
    let res = dmgs::dmgs(&v, &g, &cfg);
    assert!(res.factorization_error < 1e-12);

    // spectral
    let a = spectral::GraphMatrix::laplacian(&g);
    let mut pc = spectral::PowerConfig::new(
        reduction::Algorithm::PushCancelFlow(reduction::PhiMode::Eager),
        2,
    );
    pc.iterations = 200; // ring Laplacian eigenvalues are closely spaced
    let s = spectral::power_iteration(&a, &pc);
    // ring(6) Laplacian: λ_max = 2 − 2cos(π) = 4 exactly (n even)
    assert!((s.eigenvalue - 4.0).abs() < 1e-6, "λ = {}", s.eigenvalue);
}

#[test]
fn extremum_and_convergence_helpers() {
    use gossip_reduce::reduction::{
        AggregateKind, Extremum, ExtremumGossip, InitialData, LocalConvergence, ReductionProtocol,
    };
    let g = gossip_reduce::topology::complete(8);
    let data = InitialData::with_kind(
        vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0],
        AggregateKind::Average,
    );
    let p = ExtremumGossip::new(&g, &data, Extremum::Max);
    let mut sim =
        gossip_reduce::netsim::Simulator::new(&g, p, gossip_reduce::netsim::FaultPlan::none(), 3);
    let mut det = LocalConvergence::new(8, 4, 1e-12);
    for _ in 0..60 {
        sim.step();
        for i in 0..8 {
            det.observe(i, sim.protocol().scalar_estimate(i));
        }
        if det.all_converged(0..8) {
            break;
        }
    }
    assert!(det.all_converged(0..8));
    assert_eq!(sim.protocol().scalar_estimate(0), 9.0);
}
