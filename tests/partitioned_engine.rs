//! Cross-crate partitioned-engine checks: the real reduction protocols
//! (which opt into `PARALLEL_SAFE` with per-partition arenas) must
//! produce bit-identical estimates under any worker-thread count, and
//! the partitioned engine must still converge to the right aggregate
//! under faults.

use gossip_reduce::netsim::{
    DetectorModel, FaultPlan, LinkFailure, NodeCrash, Protocol, SimOptions, Simulator,
};
use gossip_reduce::reduction::{
    AggregateKind, FlowUpdating, InitialData, PushCancelFlow, PushFlow, PushSum, ReductionProtocol,
};
use gossip_reduce::topology::{hypercube, torus2d, Graph};

fn data(n: usize) -> InitialData<f64> {
    InitialData::uniform_random(n, AggregateKind::Average, 42)
}

fn faulty_plan() -> FaultPlan {
    FaultPlan {
        msg_loss_prob: 0.02,
        // (0, 1) is an edge of both the hypercube and the torus.
        link_failures: vec![LinkFailure {
            a: 0,
            b: 1,
            at_round: 15,
            detect_delay: 2,
        }],
        node_crashes: vec![NodeCrash {
            node: 5,
            at_round: 30,
            detect_delay: 4,
        }],
        ..FaultPlan::none()
    }
}

fn options(partitions: usize, threads: usize) -> SimOptions {
    SimOptions {
        partitions,
        threads,
        detector: DetectorModel::Timeout { window: 10 },
        ..SimOptions::default()
    }
}

/// Run `rounds` rounds and return the full per-node estimate vector as
/// raw bits plus the transport stats — the whole observable outcome.
fn run_bits<P>(graph: &Graph, proto: P, opts: SimOptions, rounds: u64) -> (Vec<u64>, String)
where
    P: Protocol + ReductionProtocol,
{
    let mut sim = Simulator::with_options(graph, proto, faulty_plan(), 7, opts);
    sim.run(rounds);
    let bits = sim
        .protocol()
        .scalar_estimates()
        .into_iter()
        .map(f64::to_bits)
        .collect();
    (bits, format!("{:?}", sim.stats()))
}

/// Each parallel-safe protocol: partitions fixed at 4, worker threads
/// swept — estimates and stats must be byte-identical, because thread
/// count is an execution hint and never part of the determinism contract.
#[test]
fn reduction_protocols_are_thread_invariant() {
    let g = hypercube(6);
    let d = data(64);
    let rounds = 120;

    macro_rules! sweep {
        ($name:literal, $make:expr) => {
            let baseline = run_bits(&g, $make, options(4, 1), rounds);
            for threads in [2, 4, 8] {
                let got = run_bits(&g, $make, options(4, threads), rounds);
                assert_eq!(
                    got, baseline,
                    "{} diverged between threads=1 and threads={threads}",
                    $name
                );
            }
        };
    }

    sweep!("push-sum", PushSum::new(&g, &d));
    sweep!("push-flow", PushFlow::new(&g, &d));
    sweep!("push-cancel-flow", PushCancelFlow::new(&g, &d));
    sweep!("flow-updating", FlowUpdating::new(&g, &d));
}

/// PCF on a torus at partitions ∈ {1, 4}: both engines must converge to
/// the true average despite loss, a dead link and a crash. (The two
/// partition counts draw from different RNG streams, so the *runs*
/// differ — the *limit* must not.)
#[test]
fn pcf_converges_under_partitioned_engine() {
    let g = torus2d(8, 8);
    let d = data(64);
    let total_v: f64 = (0..64).map(|i| *d.value(i)).sum();
    let total_w: f64 = (0..64).map(|i| d.weight(i)).sum();

    for partitions in [1, 4] {
        let mut sim = Simulator::with_options(
            &g,
            PushCancelFlow::new(&g, &d),
            faulty_plan(),
            7,
            options(partitions, 4),
        );
        // Node 5 crashes at the start of round 30 and never restarts.
        // Exactly how much mass dies with it depends on the flow desync
        // at the excision instant, so the precise limit is run-specific;
        // what PCF guarantees is that the survivors reach *consensus*
        // despite the loss, the dead link and the suspicion churn, on a
        // value close to the original average (one node's worth of mass
        // perturbs a 64-node average by little).
        sim.run(4000);
        let ests = sim.protocol().scalar_estimates();
        let survivors: Vec<f64> = ests
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 5)
            .map(|(_, &e)| e)
            .collect();
        let mean = survivors.iter().sum::<f64>() / survivors.len() as f64;
        for (i, e) in survivors.iter().enumerate() {
            let rel = ((e - mean) / mean).abs();
            assert!(
                rel < 1e-9,
                "partitions={partitions}: node {i} est {e} off consensus {mean} (rel {rel})"
            );
        }
        let true_avg = total_v / total_w;
        assert!(
            ((mean - true_avg) / true_avg).abs() < 0.05,
            "partitions={partitions}: consensus {mean} far from true average {true_avg}"
        );
    }
}

/// The partitioned fast path must stay allocation-free per round once
/// warmed up, matching the classic engine's guarantee: all lane and
/// arena capacity is retained across rounds.
#[test]
fn partitioned_rounds_reuse_lane_capacity() {
    let g = hypercube(6);
    let d = data(64);
    let mut sim = Simulator::with_options(
        &g,
        PushCancelFlow::new(&g, &d),
        FaultPlan::none(),
        3,
        options(4, 2),
    );
    // Warm up, then confirm a long steady-state run keeps working and
    // the estimate stays finite (the alloc-count gate itself lives in
    // the bench suite, which runs under the counting allocator).
    sim.run(50);
    let warm = sim.stats().sent;
    sim.run(500);
    assert!(sim.stats().sent > warm);
    for e in sim.protocol().scalar_estimates() {
        assert!(e.is_finite());
    }
}
