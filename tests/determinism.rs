//! Reproducibility guarantees: everything is a pure function of its seed.
//!
//! The experiment methodology (same-seed PF/PCF comparisons, regenerable
//! EXPERIMENTS.md numbers) rests on bit-level determinism of the whole
//! stack; these tests pin it.

use gossip_reduce::dmgs::{dmgs, DmgsConfig};
use gossip_reduce::linalg::Matrix;
use gossip_reduce::netsim::FaultPlan;
use gossip_reduce::reduction::{
    run_reduction, AggregateKind, Algorithm, InitialData, PhiMode, RunConfig,
};
use gossip_reduce::topology::hypercube;

#[test]
fn identical_seeds_identical_series() {
    let g = hypercube(5);
    let data = InitialData::uniform_random(32, AggregateKind::Average, 5);
    let run = |seed| {
        run_reduction(
            Algorithm::PushCancelFlow(PhiMode::Eager),
            &g,
            &data,
            FaultPlan::with_loss(0.1),
            seed,
            RunConfig::fixed(150, 5),
        )
    };
    let a = run(77);
    let b = run(77);
    let c = run(78);
    assert_eq!(a.series.len(), b.series.len());
    for (x, y) in a.series.iter().zip(&b.series) {
        assert_eq!(x.max.to_bits(), y.max.to_bits(), "round {}", x.round);
        assert_eq!(x.median.to_bits(), y.median.to_bits());
    }
    // different seed ⇒ different trajectory
    assert!(a
        .series
        .iter()
        .zip(&c.series)
        .any(|(x, y)| x.max.to_bits() != y.max.to_bits()));
}

#[test]
fn same_schedule_across_algorithms_with_faults() {
    // Message counts (schedule-determined) must be identical across
    // algorithms for the same seed and plan — that's the Fig. 4/7
    // methodology.
    let g = hypercube(6);
    let data = InitialData::uniform_random(64, AggregateKind::Average, 6);
    let plan = FaultPlan::none().fail_link(3, 2, 40);
    let cfg = RunConfig::fixed(100, 0);
    let pf = run_reduction(Algorithm::PushFlow, &g, &data, plan.clone(), 9, cfg);
    let pcf = run_reduction(
        Algorithm::PushCancelFlow(PhiMode::Eager),
        &g,
        &data,
        plan,
        9,
        cfg,
    );
    assert_eq!(pf.sim.sent, pcf.sim.sent);
    assert_eq!(pf.sim.delivered, pcf.sim.delivered);
    assert_eq!(pf.sim.lost_dead, pcf.sim.lost_dead);
}

#[test]
fn dmgs_is_bit_reproducible() {
    let g = hypercube(4);
    let v = Matrix::random_uniform(16, 5, 3);
    let cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Eager), 31);
    let a = dmgs(&v, &g, &cfg);
    let b = dmgs(&v, &g, &cfg);
    assert_eq!(
        a.factorization_error.to_bits(),
        b.factorization_error.to_bits()
    );
    assert_eq!(a.q.as_slice().len(), b.q.as_slice().len());
    for (x, y) in a.q.as_slice().iter().zip(b.q.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.total_rounds, b.total_rounds);
}

#[test]
fn campaign_report_is_byte_deterministic() {
    // The campaign's report contract: same lane + same seeds ⇒ identical
    // bytes, independent of the worker count. (CI diffs reports, and the
    // stress lane is trend-tracked across commits; both need this.)
    use gr_campaign::{run_campaign, sanity_corpus, Lane};
    let corpus: Vec<_> = sanity_corpus(&[1])
        .into_iter()
        .filter(|sc| sc.template == "complete16")
        .collect();
    let a = run_campaign(Lane::Sanity, &corpus, 1).render();
    let b = run_campaign(Lane::Sanity, &corpus, 4).render();
    assert_eq!(a, b);
    assert!(a.contains("verdict: PASS"), "{a}");
}

#[test]
fn campaign_violation_replays_to_identical_triple() {
    // A stress fingerprint printed by the report must replay to the same
    // (invariant, round, node) triple, and the rendered replay (trace
    // tail included) must be byte-identical across invocations. PCF in
    // eager-ϕ mode under bit flips is guaranteed to violate: a
    // NaN-producing flip reaches ϕ, which only accumulates (Fig. 5).
    use gr_campaign::{find_scenario, render_replay, run_scenario, stress_corpus};
    let corpus = stress_corpus(&[1, 2, 3]);
    let result = corpus
        .iter()
        .filter(|sc| sc.template.starts_with("flips/"))
        .map(run_scenario)
        .find(|r| r.violation.is_some())
        .expect("bit-flip templates must produce at least one violation");
    let v = result.violation.clone().unwrap();

    let sc = find_scenario(&corpus, &result.hash).expect("report hash resolves in the corpus");
    let replayed = run_scenario(sc);
    let rv = replayed.violation.expect("replay reproduces the violation");
    assert_eq!(rv.invariant, v.invariant);
    assert_eq!(rv.round, v.round);
    assert_eq!(rv.node, v.node);

    let r1 = render_replay(sc, 16);
    let r2 = render_replay(sc, 16);
    assert_eq!(r1, r2);
    assert!(r1.contains(&format!("round={}", v.round)), "{r1}");
}

#[test]
fn workload_generation_is_seeded() {
    let a = InitialData::uniform_random(64, AggregateKind::Sum, 1);
    let b = InitialData::uniform_random(64, AggregateKind::Sum, 1);
    for i in 0..64 {
        assert_eq!(a.value(i).to_bits(), b.value(i).to_bits());
    }
    let m1 = Matrix::random_uniform(8, 8, 2);
    let m2 = Matrix::random_uniform(8, 8, 2);
    assert_eq!(m1, m2);
}
