//! Property-based tests of the core invariants, across crates.
//!
//! These pin down the *algebraic* properties the paper's correctness
//! argument rests on: flow conservation implies mass conservation, PF and
//! PCF are equivalent on identical schedules, failure handling preserves
//! per-node estimates (PCF) or reverts transported mass (PF), and the
//! numerics substrate is exact where it claims to be.

use gossip_reduce::netsim::Protocol;
use gossip_reduce::numerics::{dd::dd_sum, Dd};
use gossip_reduce::reduction::{
    AggregateKind, InitialData, Mass, Payload, PhiMode, PushCancelFlow, PushFlow, ReductionProtocol,
};
use gossip_reduce::topology::{hypercube, random_regular, ring, Graph, NodeId};
use proptest::prelude::*;

/// A random sequential exchange schedule over a graph: pairs of
/// (node index selector, neighbor slot selector).
fn schedule_strategy(len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..10_000, 0u32..10_000), len)
}

/// Resolve an abstract (node, slot) pick into a concrete edge.
fn resolve(g: &Graph, pick: (u32, u32)) -> (NodeId, NodeId) {
    let i = (pick.0 as usize % g.len()) as NodeId;
    let nbrs = g.neighbors(i);
    let k = nbrs[pick.1 as usize % nbrs.len()];
    (i, k)
}

fn total_estimate<P: ReductionProtocol>(p: &P, n: usize) -> (f64, f64) {
    let mut vals = [0.0];
    let mut v = 0.0;
    let mut w = 0.0;
    for i in 0..n as NodeId {
        w += p.write_mass(i, &mut vals);
        v += vals[0];
    }
    (v, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mass conservation of PF under *arbitrary* sequential schedules.
    #[test]
    fn pf_mass_conserved_any_schedule(
        schedule in schedule_strategy(200),
        values in proptest::collection::vec(-100.0f64..100.0, 8),
    ) {
        let g = hypercube(3);
        let data = InitialData::with_kind(values, AggregateKind::Average);
        let v0: f64 = (0..8).map(|i| *data.value(i)).sum();
        let mut pf = PushFlow::new(&g, &data);
        for pick in schedule {
            let (i, k) = resolve(&g, pick);
            let mut msg = pf.on_send(i, k);
            pf.on_receive(k, i, &mut msg);
            let (v, w) = total_estimate(&pf, 8);
            prop_assert!((w - 8.0).abs() < 1e-8, "weight {w}");
            prop_assert!((v - v0).abs() < 1e-6 * v0.abs().max(1.0), "value {v} vs {v0}");
        }
    }

    /// Mass conservation of PCF (both ϕ modes) under arbitrary sequential
    /// schedules, including its cancellation/role-swap machinery.
    #[test]
    fn pcf_mass_conserved_any_schedule(
        schedule in schedule_strategy(200),
        values in proptest::collection::vec(-100.0f64..100.0, 8),
        hardened in proptest::bool::ANY,
    ) {
        let g = hypercube(3);
        let data = InitialData::with_kind(values, AggregateKind::Average);
        let v0: f64 = (0..8).map(|i| *data.value(i)).sum();
        let mode = if hardened { PhiMode::Hardened } else { PhiMode::Eager };
        let mut pcf = PushCancelFlow::with_mode(&g, &data, mode);
        for pick in schedule {
            let (i, k) = resolve(&g, pick);
            let mut msg = pcf.on_send(i, k);
            pcf.on_receive(k, i, &mut msg);
            let (v, w) = total_estimate(&pcf, 8);
            prop_assert!((w - 8.0).abs() < 1e-8, "weight {w}");
            prop_assert!((v - v0).abs() < 1e-6 * v0.abs().max(1.0), "value {v} vs {v0}");
        }
    }

    /// PF ≡ PCF: identical estimates (up to roundoff) for the same
    /// schedule and data — the paper's equivalence claim (Sec. III-B).
    #[test]
    fn pf_pcf_equivalent_same_schedule(
        schedule in schedule_strategy(150),
        values in proptest::collection::vec(0.1f64..10.0, 16),
    ) {
        let g = hypercube(4);
        let data = InitialData::with_kind(values, AggregateKind::Average);
        let mut pf = PushFlow::new(&g, &data);
        let mut pcf = PushCancelFlow::new(&g, &data);
        for pick in &schedule {
            let (i, k) = resolve(&g, *pick);
            let mut m1 = pf.on_send(i, k);
            pf.on_receive(k, i, &mut m1);
            let mut m2 = pcf.on_send(i, k);
            pcf.on_receive(k, i, &mut m2);
        }
        for i in 0..16 {
            let a = pf.scalar_estimate(i);
            let b = pcf.scalar_estimate(i);
            prop_assert!(
                (a - b).abs() <= 1e-8 * a.abs().max(1.0),
                "node {i}: PF {a} vs PCF {b}"
            );
        }
    }

    /// PCF swap-counter skew never exceeds 1 under arbitrary sequential
    /// schedules (the protocol's coordination invariant).
    #[test]
    fn pcf_swap_skew_bounded(schedule in schedule_strategy(300)) {
        let g = ring(6);
        let data = InitialData::uniform_random(6, AggregateKind::Average, 1);
        let mut pcf = PushCancelFlow::new(&g, &data);
        for pick in schedule {
            let (i, k) = resolve(&g, pick);
            let mut msg = pcf.on_send(i, k);
            pcf.on_receive(k, i, &mut msg);
            for (a, b) in g.edges() {
                let ra = pcf.swap_round(a, b);
                let rb = pcf.swap_round(b, a);
                prop_assert!(ra.abs_diff(rb) <= 1, "edge ({a},{b}): {ra} vs {rb}");
            }
        }
    }

    /// PCF link-failure handling leaves every local estimate untouched
    /// (the zero-fall-back property of Fig. 7), at any point of any
    /// schedule, in both ϕ modes.
    #[test]
    fn pcf_failure_handling_preserves_estimates(
        schedule in schedule_strategy(120),
        edge_sel in (0u32..10_000, 0u32..10_000),
        hardened in proptest::bool::ANY,
    ) {
        let g = hypercube(3);
        let data = InitialData::uniform_random(8, AggregateKind::Average, 3);
        let mode = if hardened { PhiMode::Hardened } else { PhiMode::Eager };
        let mut pcf = PushCancelFlow::with_mode(&g, &data, mode);
        for pick in schedule {
            let (i, k) = resolve(&g, pick);
            let mut msg = pcf.on_send(i, k);
            pcf.on_receive(k, i, &mut msg);
        }
        let (a, b) = resolve(&g, edge_sel);
        let before: Vec<f64> = pcf.scalar_estimates();
        pcf.on_link_failed(a, b);
        pcf.on_link_failed(b, a);
        let after: Vec<f64> = pcf.scalar_estimates();
        for i in 0..8 {
            prop_assert!(
                (before[i] - after[i]).abs() <= 1e-12 * before[i].abs().max(1.0),
                "node {i} estimate moved: {} -> {}",
                before[i],
                after[i]
            );
        }
    }

    /// PF link-failure handling *changes* the endpoint estimates by
    /// exactly the zeroed flows (the restart mechanism of Fig. 4).
    #[test]
    fn pf_failure_handling_reverts_flows(
        schedule in schedule_strategy(120),
        edge_sel in (0u32..10_000, 0u32..10_000),
    ) {
        let g = hypercube(3);
        let data = InitialData::uniform_random(8, AggregateKind::Average, 4);
        let mut pf = PushFlow::new(&g, &data);
        for pick in schedule {
            let (i, k) = resolve(&g, pick);
            let mut msg = pf.on_send(i, k);
            pf.on_receive(k, i, &mut msg);
        }
        let (a, b) = resolve(&g, edge_sel);
        let flow_ab = pf.flow(a, b).clone();
        let before = pf.estimate_mass(a);
        pf.on_link_failed(a, b);
        let after = pf.estimate_mass(a);
        // e_a gains exactly the zeroed flow (e = v − Σf).
        let expect = before.value + flow_ab.value;
        prop_assert!((after.value - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }

    /// Double-double sums of random data match a 256-bit-style exact model
    /// (computed via sorting + compensated reference) to ~1e-28 relative.
    #[test]
    fn dd_sum_accuracy(values in proptest::collection::vec(-1e12f64..1e12, 1..200)) {
        let dd = dd_sum(&values);
        // reference: Neumaier over sorted-by-magnitude inputs in Dd
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap());
        let mut acc = Dd::ZERO;
        for v in sorted {
            acc += v;
        }
        let diff = (dd - acc).abs().to_f64();
        let scale = acc.abs().to_f64().max(1.0);
        prop_assert!(diff <= 1e-25 * scale, "diff {diff}");
    }

    /// Mass payload algebra: negation is an involution and add/sub are
    /// inverse, for vector payloads of any dimension.
    #[test]
    fn mass_algebra(
        values in proptest::collection::vec(-1e6f64..1e6, 1..8),
        weight in -100.0f64..100.0,
    ) {
        let m = Mass::new(values.clone(), weight);
        let mut n = m.negated();
        prop_assert!(m.is_neg_of(&n) || m.is_zero());
        n.negate();
        prop_assert!(n.value.eq_components(&m.value));
        let mut s = m.clone();
        s.add_assign(&m);
        s.sub_assign(&m);
        // add-then-sub is exact in IEEE-754 for equal operands
        prop_assert!(s.value.eq_components(&m.value));
        prop_assert_eq!(s.weight, m.weight);
    }

    /// Topology invariants for random regular graphs: regularity and
    /// handshake consistency for arbitrary parameters.
    #[test]
    fn random_regular_invariants(n in 4usize..40, k in 2usize..5, seed in 0u64..50) {
        prop_assume!(n * k % 2 == 0 && k < n);
        let g = random_regular(n, k, seed);
        prop_assert_eq!(g.len(), n);
        prop_assert_eq!(g.edge_count() * 2, g.arc_count());
        for i in 0..n as NodeId {
            prop_assert_eq!(g.degree(i), k);
            for &j in g.neighbors(i) {
                prop_assert!(g.has_edge(j, i), "asymmetric edge ({i},{j})");
            }
        }
    }
}
