//! Cross-crate integration tests: the full stack (topology → simulator →
//! reduction → runner / dmGS) exercised through the public facade.

use gossip_reduce::dmgs::{dmgs, DmgsConfig};
use gossip_reduce::linalg::Matrix;
use gossip_reduce::netsim::FaultPlan;
use gossip_reduce::reduction::{
    run_reduction, AggregateKind, Algorithm, InitialData, PhiMode, RunConfig,
};
use gossip_reduce::topology::{
    binary_tree, complete, erdos_renyi, hypercube, is_connected, ring, torus3d,
};

fn avg(n: usize, seed: u64) -> InitialData<f64> {
    InitialData::uniform_random(n, AggregateKind::Average, seed)
}

#[test]
fn every_algorithm_converges_on_every_topology() {
    // The convergence guarantee is topology-independent (any connected
    // graph); sweep a structurally diverse set.
    let graphs: Vec<(&str, gossip_reduce::topology::Graph)> = vec![
        ("ring", ring(12)),
        ("complete", complete(12)),
        ("hypercube", hypercube(4)),
        ("torus3d", torus3d(3, 3, 3)),
        ("tree", binary_tree(15)),
    ];
    for (name, g) in &graphs {
        let data = avg(g.len(), 9);
        for alg in [
            Algorithm::PushSum,
            Algorithm::PushFlow,
            Algorithm::PushCancelFlow(PhiMode::Eager),
            Algorithm::PushCancelFlow(PhiMode::Hardened),
            Algorithm::FlowUpdating,
        ] {
            let r = run_reduction(
                alg,
                g,
                &data,
                FaultPlan::none(),
                3,
                RunConfig::to_accuracy(1e-12, 60_000),
            );
            assert!(
                r.converged,
                "{} on {name}: err {:?} after {} rounds",
                alg.label(),
                r.final_err,
                r.rounds
            );
        }
    }
}

#[test]
fn random_graph_end_to_end() {
    // Erdős–Rényi with resampling until connected, then a full faulty run.
    let mut seed = 0;
    let g = loop {
        let g = erdos_renyi(40, 0.15, seed);
        if is_connected(&g) {
            break g;
        }
        seed += 1;
    };
    let data = avg(40, 17);
    let plan = FaultPlan::with_loss(0.1);
    let r = run_reduction(
        Algorithm::PushCancelFlow(PhiMode::Eager),
        &g,
        &data,
        plan,
        5,
        RunConfig::to_accuracy(1e-12, 60_000),
    );
    assert!(r.converged, "{:?}", r.final_err);
}

#[test]
fn sum_and_average_agree_up_to_n() {
    let g = hypercube(4);
    let values: Vec<f64> = (0..16).map(|i| (i as f64).sin() + 2.0).collect();
    let sum_data = InitialData::with_kind(values.clone(), AggregateKind::Sum);
    let avg_data = InitialData::with_kind(values, AggregateKind::Average);
    let cfg = RunConfig::to_accuracy(1e-13, 60_000);
    let alg = Algorithm::PushCancelFlow(PhiMode::Eager);
    let rs = run_reduction(alg, &g, &sum_data, FaultPlan::none(), 2, cfg);
    let ra = run_reduction(alg, &g, &avg_data, FaultPlan::none(), 2, cfg);
    assert!(rs.converged && ra.converged);
    let sum_ref = sum_data.reference()[0].to_f64();
    let avg_ref = avg_data.reference()[0].to_f64();
    assert!((sum_ref - 16.0 * avg_ref).abs() < 1e-12);
}

#[test]
fn link_failure_fallback_contrast_pf_vs_pcf() {
    // The paper's headline comparison, end-to-end through the runner.
    let g = hypercube(6);
    let data = InitialData::spike(64);
    let plan = FaultPlan::none().fail_link(0, 1, 75);
    let cfg = RunConfig::fixed(200, 1);
    let pf = run_reduction(Algorithm::PushFlow, &g, &data, plan.clone(), 7, cfg);
    let pcf = run_reduction(
        Algorithm::PushCancelFlow(PhiMode::Eager),
        &g,
        &data,
        plan,
        7,
        cfg,
    );
    let at = |series: &[gossip_reduce::reduction::ErrorSample], round: u64| {
        series.iter().find(|s| s.round == round).unwrap().max
    };
    // identical before the failure
    let pre_pf = at(&pf.series, 74);
    let pre_pcf = at(&pcf.series, 74);
    assert!((pre_pf - pre_pcf).abs() <= pre_pf * 1e-6);
    // PF rebounds, PCF does not
    assert!(at(&pf.series, 77) > pre_pf * 50.0);
    assert!(at(&pcf.series, 77) < pre_pcf * 50.0);
    // both finish convergent eventually; PCF far ahead at round 200
    assert!(at(&pcf.series, 200) < at(&pf.series, 200));
}

#[test]
fn dmgs_full_stack_small() {
    let g = torus3d(3, 3, 3); // 27 nodes — non-power-of-two node count
    let v = Matrix::random_uniform(27, 6, 11);
    let cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Eager), 11);
    let res = dmgs(&v, &g, &cfg);
    assert!(
        res.factorization_error < 5e-14,
        "{:e}",
        res.factorization_error
    );
    assert!(
        res.orthogonality_error < 5e-13,
        "{:e}",
        res.orthogonality_error
    );
    // R copies upper triangular everywhere
    for r in &res.r_per_node {
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }
}

#[test]
fn dmgs_tolerates_message_loss() {
    let g = hypercube(4);
    let v = Matrix::random_uniform(16, 4, 13);
    let mut cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Hardened), 13);
    cfg.msg_loss_prob = 0.15;
    cfg.max_rounds_per_reduction = 30_000;
    let res = dmgs(&v, &g, &cfg);
    assert!(
        res.factorization_error < 1e-13,
        "loss should not degrade dmGS(PCF): {:e}",
        res.factorization_error
    );
}

#[test]
fn node_crash_consensus_among_survivors() {
    let g = hypercube(5);
    let data = avg(32, 21);
    let plan = FaultPlan::none().crash_node(9, 60);
    let r = run_reduction(
        Algorithm::PushCancelFlow(PhiMode::Eager),
        &g,
        &data,
        plan,
        9,
        RunConfig::to_accuracy(1e-12, 60_000),
    );
    assert!(r.converged, "{:?}", r.final_err);
}
