//! Recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::Value;

pub(crate) fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not supported; the
                            // writer never emits them (it escapes only
                            // control characters).
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            // Integer literals outside the i64/u64 range (e.g. an f64 near
            // 1e308 rendered without an exponent) fall back to f64, matching
            // serde_json's default (non-arbitrary-precision) behaviour.
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#" {"a": [1, -2, 3.5e-2], "b": {"c": null, "d": "x\ny"}, "t": true} "#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 0.035);
        assert!(v["b"]["c"].is_null());
        assert_eq!(v["b"]["d"], "x\ny");
        assert_eq!(v["t"], true);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn oversized_integers_fall_back_to_float() {
        // 2^64 and beyond: u64 overflows, the literal is still valid JSON.
        let v = parse("18446744073709551616").unwrap();
        assert_eq!(v.as_f64(), Some(1.8446744073709552e19));
        // A ~1e307 f64 rendered without an exponent round-trips as float.
        let big = format!("{}", 2.792853836252744e307_f64);
        let v = parse(&big).unwrap();
        assert_eq!(v.as_f64(), Some(2.792853836252744e307));
        let v = parse(&format!("-{big}")).unwrap();
        assert_eq!(v.as_f64(), Some(-2.792853836252744e307));
    }

    #[test]
    fn key_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }
}
