//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses the [`Value`] tree defined in the vendored `serde`
//! crate. Object key order is preserved end to end, so serializing the
//! same data twice yields byte-identical text — a property the campaign
//! harness's determinism checks rely on.

use std::fmt;

pub use serde::Value;

mod parse;

#[doc(hidden)]
pub mod __private {
    pub use serde::{Serialize, Value};
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value to a [`Value`] tree.
///
/// Infallible in this implementation; the `Result` keeps call sites
/// source-compatible with upstream serde_json.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Pretty JSON text: two-space indent, newline-separated members.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parses JSON text into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    parse::parse(s)
}

/// Builds a [`Value`] in place.
///
/// Supports the object, array, and lone-expression forms the workspace
/// uses; not a full port of upstream's TT-muncher.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($key:literal : $val:expr),+ $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::__private::Serialize::to_value(&$val)) ),+
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $( $crate::__private::Serialize::to_value(&$val) ),*
        ])
    };
    ($val:expr) => { $crate::__private::Serialize::to_value(&$val) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!({}), Value::Object(vec![]));
        assert_eq!(json!(null), Value::Null);
        let v = json!({
            "a": 1u32,
            "b": vec!["x".to_string()],
        });
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"][0], "x");
        assert_eq!(json!([1u8, 2u8])[1], 2);
    }

    #[test]
    fn pretty_roundtrip() {
        let v = json!({
            "name": "t",
            "rows": vec![json!({"n": 8usize}), json!({"n": 64usize})],
            "empty": json!({}),
        });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"rows\": [\n"));
        let back = from_str(&text).unwrap();
        assert_eq!(back["rows"][1]["n"], 64);
        assert_eq!(back, v);
    }

    #[test]
    fn compact_deterministic() {
        let a = to_string(&json!({"z": 1u8, "a": 2u8})).unwrap();
        assert_eq!(a, r#"{"z":1,"a":2}"#);
    }
}
