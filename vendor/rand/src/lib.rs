//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the tiny slice of `rand` it actually uses: a
//! deterministic seedable generator ([`rngs::StdRng`], xoshiro256++), the
//! [`SeedableRng`]/[`RngExt`] traits, uniform range sampling, and slice
//! shuffling. Determinism is the only contract the workspace depends on —
//! every consumer seeds explicitly (`seed_from_u64`) and the simulator's
//! reproducibility tests pin the behavior. There is intentionally no OS
//! entropy source: `gossip-reduce` must never draw nondeterministic
//! randomness.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words. The base trait everything samples
/// through.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed, with the `seed_from_u64`
/// convenience the workspace uses everywhere.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64 like upstream rand.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: expands/decorrelates integer seeds.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening-multiply range reduction (Lemire); the residual
                // modulo bias over a 64-bit source is far below anything a
                // simulation could observe, and the mapping is deterministic.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`]. (Upstream rand 0.9 calls this `Rng`; the workspace was
/// written against the `RngExt` spelling.)
pub trait RngExt: RngCore {
    /// A uniform sample of `T` (see [`Standard`] for distributions).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// The conventional one-stop import.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.random_range(-4i64..4);
            assert!((-4..4).contains(&z));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(4u32..4);
    }
}
