//! Sequence helpers: shuffling and random element choice.

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(0);
        let v: Vec<u8> = vec![];
        assert!(v.choose(&mut rng).is_none());
        assert!([1].choose(&mut rng).is_some());
    }
}
