//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
///
/// Not cryptographic — statistically strong, tiny, and fully deterministic
/// from its seed, which is all a simulation harness needs. The name keeps
/// the upstream `rand` spelling so call sites read normally.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        out
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state is the one fixed point of xoshiro. Expand it
        // through splitmix64 (as seed_from_u64 does) instead of nudging a
        // single word: a state with three zero words repeats its first
        // output.
        if s.iter().all(|&w| w == 0) {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Alias kept for API familiarity; the workspace has one generator.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn clone_diverges_independently() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = a.next_u64();
        // b is one draw behind now
        assert_eq!(a.next_u64(), {
            let _ = b.next_u64();
            b.next_u64()
        });
    }
}
