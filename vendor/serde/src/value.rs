//! The generic value tree shared by `serde` (producers) and `serde_json`
//! (rendering/parsing).

use std::fmt;

/// An in-memory JSON-shaped document.
///
/// Objects preserve insertion order (see the crate docs); numeric values
/// keep their signedness class so integers render without a decimal point.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float. Non-finite values render as `null` (JSON has no NaN).
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index, if this is an array.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Unsigned view, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Signed view, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object view (ordered pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Missing keys index to `Null` (the `serde_json` convention).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Out-of-range indices resolve to `Null` (the `serde_json` convention).
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

macro_rules! partial_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

partial_eq_num!(i32, i64, u32, u64, usize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Compact JSON rendering (what `serde_json::to_string` produces).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => {
                if !x.is_finite() {
                    f.write_str("null")
                } else if *x == x.trunc() && x.abs() < 1e15 {
                    // Keep float-typed whole numbers visibly floats.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// JSON string escaping.
pub(crate) fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_comparisons() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(3)),
            (
                "b".into(),
                Value::Array(vec![Value::String("x".into()), Value::Float(1.5)]),
            ),
        ]);
        assert_eq!(v["a"], 3);
        assert_eq!(v["b"][0], "x");
        assert_eq!(v["b"][1], 1.5);
        assert!(v["missing"].is_null());
        assert!(v["b"][9].is_null());
    }

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(vec![
            ("s".into(), Value::String("a\"b\n".into())),
            ("n".into(), Value::Null),
            ("f".into(), Value::Float(2.0)),
            ("i".into(), Value::Int(-3)),
        ]);
        assert_eq!(v.to_string(), r#"{"s":"a\"b\n","n":null,"f":2.0,"i":-3}"#);
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_string(), "null");
    }
}
