//! Offline vendored stand-in for `serde`'s serialization half.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the slice of serde it needs: a [`Serialize`] trait, a generic
//! in-memory [`Value`] tree, and a `#[derive(Serialize)]` macro (in the
//! sibling `serde_derive` crate, enabled by the `derive` feature).
//!
//! Two deliberate simplifications versus upstream serde:
//!
//! * serialization goes through one concrete [`Value`] tree instead of a
//!   generic `Serializer` visitor — every consumer in this workspace
//!   ultimately wants JSON text, and a tree keeps the derive macro tiny;
//! * [`Value::Object`] preserves *insertion order* (it is a `Vec` of
//!   pairs, not a map). Byte-identical report files across runs are a
//!   hard requirement of the campaign harness, and field order is part
//!   of that contract.

mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Array(vec![Value::UInt(1), Value::String("a".into())])
        );
    }
}
