//! Offline vendored stand-in for `criterion`.
//!
//! A minimal wall-clock micro-benchmark harness exposing the API surface
//! the workspace's benches use. No statistics, plots, or baselines —
//! each benchmark warms up briefly, runs `sample_size` timed samples, and
//! prints the fastest per-iteration time (the most noise-robust point
//! estimate a simple harness can offer).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_bench(id, self.default_sample_size, None, f);
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: ToBenchmarkId, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) {
        run_bench(&id.to_benchmark_id(), self.sample_size, self.throughput, f);
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ToBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) {
        run_bench(
            &id.to_benchmark_id(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// End the group (prints nothing; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait ToBenchmarkId {
    /// The display id.
    fn to_benchmark_id(&self) -> String;
}

impl ToBenchmarkId for BenchmarkId {
    fn to_benchmark_id(&self) -> String {
        self.id.clone()
    }
}

impl ToBenchmarkId for &str {
    fn to_benchmark_id(&self) -> String {
        (*self).to_string()
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate the per-sample iteration count to ~5 ms.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        if per < best {
            best = per;
        }
    }
    match throughput {
        Some(Throughput::Elements(n)) if !best.is_zero() => {
            let rate = n as f64 / best.as_secs_f64();
            println!("  {id}: {best:?}/iter  ({rate:.3e} elem/s)");
        }
        Some(Throughput::Bytes(n)) if !best.is_zero() => {
            let rate = n as f64 / best.as_secs_f64();
            println!("  {id}: {best:?}/iter  ({rate:.3e} B/s)");
        }
        _ => println!("  {id}: {best:?}/iter"),
    }
}

/// Bundle benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("inline", |b| b.iter(|| black_box(2u64) * 3));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
