//! Offline vendored stand-in for `proptest`.
//!
//! Provides the slice of proptest the workspace's property tests use:
//! range/tuple/vec/bool/float strategies, the `proptest!` macro, and the
//! `prop_assert*` / `prop_assume!` family. Two deliberate differences
//! from upstream:
//!
//! * **no shrinking** — a failing case reports its deterministic seed
//!   instead of a minimized input;
//! * **deterministic cases** — the per-case seed is a pure function of
//!   `(module path, test name, attempt index)`, so a failure reproduces
//!   exactly on re-run with no persistence files.

use rand::prelude::*;
use rand::SampleRange;

/// Run-time configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many generated cases must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: retry with fresh ones.
    Reject,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// A deterministic value generator.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a pure function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.clone().sample_single(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// `proptest::bool::ANY` and friends.
pub mod bool {
    use super::Strategy;
    use rand::RngCore;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Either boolean, equiprobably.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }
}

/// Numeric special-value strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::Strategy;
        use rand::RngCore;

        /// Normal (non-zero, non-subnormal, finite) doubles of either
        /// sign, drawn uniformly over the bit patterns that qualify.
        #[derive(Clone, Copy, Debug)]
        pub struct Normal;

        /// See [`Normal`].
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
                loop {
                    let x = f64::from_bits(rng.next_u64());
                    if x.is_normal() {
                        return x;
                    }
                }
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::{RngCore, SampleRange};

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn pick_len<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len<R: RngCore + ?Sized>(&self, _rng: &mut R) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick_len<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            self.clone().sample_single(rng)
        }
    }

    /// Strategy for `Vec<S::Value>` with strategy-chosen length.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector of values from `element`, sized by `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The conventional one-stop import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// FNV-1a over the identifying parts of a test case: deterministic,
/// process-independent per-case seeds.
pub fn case_seed(module: &str, test: &str, attempt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in module
        .bytes()
        .chain(test.bytes())
        .chain(attempt.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub mod __private {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// The test harness macro: generates one `#[test]` per property, running
/// it over `config.cases` generated inputs. `prop_assume!` rejections
/// retry with fresh inputs, capped at `cases × 20` attempts.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is
/// threaded in at repetition depth 0 so it can repeat per test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __max_attempts = (__config.cases as u64) * 20;
                let mut __passed: u32 = 0;
                let mut __attempt: u64 = 0;
                while __passed < __config.cases {
                    assert!(
                        __attempt < __max_attempts,
                        "proptest {}: too many rejected inputs ({} attempts for {} cases)",
                        stringify!($name), __attempt, __config.cases
                    );
                    let __seed = $crate::case_seed(module_path!(), stringify!($name), __attempt);
                    __attempt += 1;
                    let mut __rng = <$crate::__private::StdRng as $crate::__private::SeedableRng>::seed_from_u64(__seed);
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed at attempt {} (seed {:#x}):\n{}",
                                stringify!($name), __attempt - 1, __seed, __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking directly) so the harness can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Rejects the current inputs inside `proptest!`; the harness retries
/// with fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = crate::case_seed("m", "t", 0);
        let b = crate::case_seed("m", "t", 0);
        let c = crate::case_seed("m", "t", 1);
        let d = crate::case_seed("m", "u", 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(
            v in crate::collection::vec((0u32..5, 0u32..5), 2..9),
            fixed in crate::collection::vec(0u64..10, 4usize),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert_eq!(fixed.len(), 4);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn assume_retries(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn normal_floats_are_normal(x in crate::num::f64::NORMAL, b in crate::bool::ANY) {
            prop_assert!(x.is_normal());
            let _ = b;
        }
    }
}
