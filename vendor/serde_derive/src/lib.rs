//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates `impl serde::Serialize` (the workspace's tree-building
//! variant — see the vendored `serde` crate) for:
//!
//! * structs with named fields;
//! * enums with unit, tuple, and named-field variants (externally
//!   tagged, like upstream serde's default).
//!
//! Implemented directly on `proc_macro::TokenStream` — no `syn`/`quote`,
//! since those cannot be fetched offline. Generics and `#[serde(...)]`
//! attributes are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::str::FromStr;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let code = match parse_item(&tokens) {
        Ok(Item::Struct { name, fields }) => gen_struct(&name, &fields),
        Ok(Item::Enum { name, variants }) => gen_enum(&name, &variants),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    TokenStream::from_str(&code).expect("serde_derive generated invalid Rust")
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(tokens: &[TokenTree]) -> Result<Item, String> {
    let mut i = 0;
    skip_attrs_and_vis(tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize): expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize): expected item name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize): generic type `{name}` is not supported by the vendored serde_derive"
        ));
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => return Err(format!("derive(Serialize): `{name}` has no braced body")),
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();
    match keyword.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(&body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(&body)?,
        }),
        other => Err(format!(
            "derive(Serialize): cannot derive for `{other}` items"
        )),
    }
}

/// Skips `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Splits at top-level commas, tracking `<...>` angle depth so commas in
/// generic argument lists (e.g. `BTreeMap<String, V>`) don't split fields.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level_commas(body) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => {
                return Err(format!(
                    "derive(Serialize): expected field name, found `{other}` (tuple structs are not supported)"
                ))
            }
            None => {}
        }
    }
    Ok(fields)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level_commas(body) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!(
                    "derive(Serialize): expected variant, found `{other}`"
                ))
            }
            None => continue,
        };
        i += 1;
        let kind = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Named(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Tuple(split_top_level_commas(&inner).len())
            }
            // `= discriminant` or nothing: unit variant either way.
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn fields_object(fields: &[String], access_prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value({access_prefix}{f}))"))
        .collect();
    format!("serde::Value::Object(vec![{}])", pairs.join(", "))
}

fn gen_struct(name: &str, fields: &[String]) -> String {
    let object = fields_object(fields, "&self.");
    format!(
        "impl serde::Serialize for {name} {{\n\
         \x20   fn to_value(&self) -> serde::Value {{\n\
         \x20       {object}\n\
         \x20   }}\n\
         }}"
    )
}

fn gen_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let arm = match &v.kind {
            VariantKind::Unit => format!(
                "{name}::{vname} => serde::Value::String({vname:?}.to_string()),\n"
            ),
            VariantKind::Tuple(1) => format!(
                "{name}::{vname}(f0) => serde::Value::Object(vec![({vname:?}.to_string(), serde::Serialize::to_value(f0))]),\n"
            ),
            VariantKind::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                let elems: Vec<String> = binders
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({binds}) => serde::Value::Object(vec![({vname:?}.to_string(), serde::Value::Array(vec![{elems}]))]),\n",
                    binds = binders.join(", "),
                    elems = elems.join(", ")
                )
            }
            VariantKind::Named(fields) => {
                let binds = fields.join(", ");
                let object = fields_object(fields, "");
                format!(
                    "{name}::{vname} {{ {binds} }} => serde::Value::Object(vec![({vname:?}.to_string(), {object})]),\n"
                )
            }
        };
        arms.push_str(&arm);
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         \x20   fn to_value(&self) -> serde::Value {{\n\
         \x20       match self {{\n\
         {arms}\
         \x20       }}\n\
         \x20   }}\n\
         }}"
    )
}
