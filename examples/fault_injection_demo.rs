//! Side-by-side fault drill: push-sum vs push-flow vs push-cancel-flow.
//!
//! Re-enacts the paper's core comparison as a narrated run: the same
//! 64-node averaging job is hit with (a) 10% message loss and (b) a
//! permanent link failure at round 100, once for each algorithm, with the
//! *same* communication schedule (same seed). Watch push-sum converge to
//! the wrong answer, push-flow survive but restart, and push-cancel-flow
//! shrug both failures off.
//!
//! Run with: `cargo run --release --example fault_injection_demo`

use gossip_reduce::netsim::{FaultPlan, Simulator};
use gossip_reduce::numerics::max_relative_error;
use gossip_reduce::reduction::{
    AggregateKind, InitialData, PushCancelFlow, PushFlow, PushSum, ReductionProtocol,
};
use gossip_reduce::topology::hypercube;

const CHECKPOINTS: [u64; 7] = [25, 50, 99, 105, 150, 400, 1500];

fn trajectory<P: ReductionProtocol>(
    graph: &gossip_reduce::topology::Graph,
    proto: P,
    plan: FaultPlan,
    reference: gossip_reduce::numerics::Dd,
) -> Vec<f64> {
    let mut sim = Simulator::new(graph, proto, plan, 11);
    CHECKPOINTS
        .iter()
        .map(|&cp| {
            while sim.round() < cp {
                sim.step();
            }
            max_relative_error(sim.protocol().scalar_estimates(), reference)
        })
        .collect()
}

fn main() {
    let graph = hypercube(6);
    let data = InitialData::uniform_random(64, AggregateKind::Average, 5);
    let reference = data.reference()[0];

    // 10% of messages vanish, and link (0,1) dies for good at round 100.
    let plan = FaultPlan::with_loss(0.10).fail_link(0, 1, 100);

    let ps = trajectory(&graph, PushSum::new(&graph, &data), plan.clone(), reference);
    let pf = trajectory(
        &graph,
        PushFlow::new(&graph, &data),
        plan.clone(),
        reference,
    );
    let pcf = trajectory(&graph, PushCancelFlow::new(&graph, &data), plan, reference);

    println!("max local relative error vs true average (10% loss + link death at round 100)\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "round", "push-sum", "push-flow", "PCF"
    );
    for (i, &cp) in CHECKPOINTS.iter().enumerate() {
        println!(
            "{cp:>7} {:>12.2e} {:>12.2e} {:>12.2e}{}",
            ps[i],
            pf[i],
            pcf[i],
            if cp == 105 {
                "   <- link failure handled at 100"
            } else {
                ""
            }
        );
    }

    println!("\nreadings:");
    println!(" * push-sum: every lost message permanently deletes mass — it converges, but to the wrong value");
    println!(" * push-flow: self-heals loss and survives the dead link, but the handling threw it back near the start");
    println!(" * push-cancel-flow: same failures, no fall-back, machine precision");

    assert!(ps.last().unwrap() > &1e-6, "push-sum should be biased");
    assert!(
        pcf.last().unwrap() < &1e-12,
        "PCF should be at machine precision"
    );
}
