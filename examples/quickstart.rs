//! Quickstart: compute a global average with push-cancel-flow.
//!
//! Sets up a 64-node hypercube in which every node holds one number, runs
//! the PCF gossip reduction, and watches every node's local estimate
//! converge to the global average — to machine precision, with no
//! coordinator and no synchronisation beyond the round structure.
//!
//! Run with: `cargo run --release --example quickstart`

use gossip_reduce::netsim::{FaultPlan, Simulator};
use gossip_reduce::reduction::{AggregateKind, InitialData, PushCancelFlow, ReductionProtocol};
use gossip_reduce::topology::hypercube;

fn main() {
    // 1. A topology: who can talk to whom. Any connected graph works;
    //    short-diameter graphs converge in O(log n) rounds.
    let graph = hypercube(6); // 64 nodes, every node has 6 neighbors
    let n = graph.len();

    // 2. Initial data: node i holds the value i, all weights 1 → the
    //    target aggregate is the average (n-1)/2 = 31.5.
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let data = InitialData::with_kind(values, AggregateKind::Average);
    let truth = data.reference()[0].to_f64();

    // 3. The protocol + the simulator that drives it. Seeded → the run is
    //    exactly reproducible.
    let pcf = PushCancelFlow::new(&graph, &data);
    let mut sim = Simulator::new(&graph, pcf, FaultPlan::none(), 42);

    println!("target average: {truth}");
    println!("{:>6} {:>14} {:>14}", "round", "node 0 says", "max |error|");
    for checkpoint in [1u64, 5, 10, 20, 40, 80, 160, 320] {
        while sim.round() < checkpoint {
            sim.step();
        }
        let est0 = sim.protocol().scalar_estimate(0);
        let worst = sim
            .protocol()
            .scalar_estimates()
            .iter()
            .map(|e| (e - truth).abs())
            .fold(0.0f64, f64::max);
        println!("{checkpoint:>6} {est0:>14.9} {worst:>14.2e}");
    }

    let final_max = sim
        .protocol()
        .scalar_estimates()
        .iter()
        .map(|e| ((e - truth) / truth).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nafter {} rounds every node agrees on the average to {final_max:.2e} relative error",
        sim.round()
    );
    assert!(final_max < 1e-12);
}
