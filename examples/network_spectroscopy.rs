//! Network spectroscopy: a network measures its own spectral properties.
//!
//! Every node knows only its neighbors, yet together they estimate global
//! spectral quantities of their own topology — the adjacency spectral
//! radius and the largest Laplacian eigenvalue — using distributed power
//! iteration whose only global primitive is the PCF gossip reduction.
//! These are exactly the quantities that govern how fast gossip itself
//! converges, so the network is, in effect, profiling itself.
//!
//! Run with: `cargo run --release --example network_spectroscopy`

use gossip_reduce::reduction::{Algorithm, PhiMode};
use gossip_reduce::spectral::{power_iteration, GraphMatrix, PowerConfig};
use gossip_reduce::topology::{hypercube, is_connected, watts_strogatz};

fn main() {
    let alg = Algorithm::PushCancelFlow(PhiMode::Eager);

    // A 6D hypercube knows its exact answers: adjacency spectral radius 6,
    // Laplacian max 12.
    let cube = hypercube(6);
    let mut cfg = PowerConfig::with_shift(alg, 1, 8.0);
    cfg.iterations = 120;
    let adj = power_iteration(&GraphMatrix::adjacency(&cube), &cfg);
    let lap = power_iteration(&GraphMatrix::laplacian(&cube), &PowerConfig::new(alg, 2));
    println!("6D hypercube (64 nodes):");
    println!(
        "  adjacency spectral radius: {:.9}  (exact: 6)",
        adj.eigenvalue
    );
    println!(
        "  largest Laplacian eigenvalue: {:.9}  (exact: 12)",
        lap.eigenvalue
    );
    println!(
        "  gossip rounds spent: {}",
        adj.reduction_rounds + lap.reduction_rounds
    );

    // A small-world mesh has no closed form — the point of measuring.
    let mesh = {
        let mut seed = 5;
        loop {
            let g = watts_strogatz(96, 6, 0.2, seed);
            if is_connected(&g) {
                break g;
            }
            seed += 1;
        }
    };
    let mut cfg = PowerConfig::with_shift(alg, 3, 8.0);
    cfg.iterations = 150;
    let adj = power_iteration(&GraphMatrix::adjacency(&mesh), &cfg);
    println!("\nWatts-Strogatz small-world mesh (96 nodes, k=6, beta=0.2):");
    println!("  adjacency spectral radius: {:.6}", adj.eigenvalue);
    println!(
        "  (bounds check: avg degree {} <= rho <= max degree {})",
        6,
        (0..96u32).map(|i| mesh.degree(i)).max().unwrap()
    );
    assert!(adj.eigenvalue >= 6.0 - 1e-6);
    assert!(adj.eigenvalue <= (0..96u32).map(|i| mesh.degree(i)).max().unwrap() as f64 + 1e-6);

    // The eigenvector is distributed: each node ends up with its own
    // component — e.g. its "spectral centrality".
    let (argmax, max) = adj
        .eigenvector
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .unwrap();
    println!("  most central node: {argmax} (eigenvector weight {max:.4})");
}
