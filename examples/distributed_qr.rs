//! Distributed QR factorization on top of gossip reductions.
//!
//! Factors a 128×8 matrix whose rows live on 64 nodes, with every norm
//! and dot product computed by a gossip reduction — first with push-flow,
//! then with push-cancel-flow — and compares the resulting factorization
//! quality against the sequential modified Gram-Schmidt reference. This
//! is the paper's Sec. IV case study: reduction-level accuracy translates
//! directly to matrix-level accuracy.
//!
//! Run with: `cargo run --release --example distributed_qr`

use gossip_reduce::dmgs::{dmgs, DmgsConfig};
use gossip_reduce::linalg::{factorization_error, mgs_qr, Matrix};
use gossip_reduce::reduction::{Algorithm, PhiMode};
use gossip_reduce::topology::hypercube;

fn main() {
    let graph = hypercube(6); // 64 nodes
    let v = Matrix::random_uniform(128, 8, 7); // two rows per node

    // Sequential reference: what a single machine would compute.
    let (q_ref, r_ref) = mgs_qr(&v);
    println!(
        "sequential MGS        : ‖V−QR‖∞/‖V‖∞ = {:.2e}",
        factorization_error(&v, &q_ref, &r_ref)
    );

    for (label, alg) in [
        ("dmGS(push-flow)      ", Algorithm::PushFlow),
        (
            "dmGS(push-cancel-flow)",
            Algorithm::PushCancelFlow(PhiMode::Eager),
        ),
    ] {
        let mut cfg = DmgsConfig::paper(alg, 7);
        cfg.max_rounds_per_reduction = 3000;
        let res = dmgs(&v, &graph, &cfg);
        println!(
            "{label}: ‖V−QR‖∞/‖V‖∞ = {:.2e}   ‖I−QᵀQ‖∞ = {:.2e}   ({} reductions, {} gossip rounds)",
            res.factorization_error,
            res.orthogonality_error,
            res.reductions,
            res.total_rounds
        );
    }

    println!(
        "\nEvery node ends up with its own copy of R and its own rows of Q —\n\
         no node ever saw the whole matrix, and no coordinator existed."
    );
}
