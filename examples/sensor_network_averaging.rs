//! Sensor-network averaging under realistic faults.
//!
//! The motivating scenario for gossip reductions: a field of battery
//! sensors on an ad-hoc radio mesh wants the network-wide mean
//! temperature. The radio drops 5% of packets, and one sensor dies
//! outright mid-computation — and the PCF reduction still delivers the
//! mean on every surviving node, because both failure modes are absorbed
//! by the flow bookkeeping rather than by a recovery protocol.
//!
//! A subtlety worth seeing once: when sensor 13 dies, its *reading is not
//! lost* — by round 120 its value has already diffused into the network's
//! flow state, and PCF's failure handling (fold the dead link's flows,
//! leave every estimate untouched) keeps that diffused contribution in
//! the average. The survivors re-converge to (very nearly) the original
//! 100-sensor mean, not to the 99-sensor mean.
//!
//! Run with: `cargo run --release --example sensor_network_averaging`

use gossip_reduce::netsim::{FaultPlan, Simulator};
use gossip_reduce::numerics::Dd;
use gossip_reduce::reduction::{
    AggregateKind, InitialData, PhiMode, PushCancelFlow, ReductionProtocol,
};
use gossip_reduce::topology::{is_connected, random_regular};
use rand::prelude::*;

fn main() {
    let n = 100;
    // An ad-hoc mesh: each sensor reaches 4 random peers. Resample until
    // connected (k-regular graphs with k ≥ 3 almost surely are).
    let mut graph_seed = 7;
    let graph = loop {
        let g = random_regular(n, 4, graph_seed);
        if is_connected(&g) {
            break g;
        }
        graph_seed += 1;
    };

    // Temperatures around 21°C with sensor noise.
    let mut rng = StdRng::seed_from_u64(99);
    let temps: Vec<f64> = (0..n)
        .map(|_| 21.0 + rng.random::<f64>() * 4.0 - 2.0)
        .collect();
    let data = InitialData::with_kind(temps.clone(), AggregateKind::Average);

    // The fault story: 5% packet loss throughout, sensor 13 dies at
    // round 120.
    let plan = FaultPlan::with_loss(0.05).crash_node(13, 120);

    let pcf = PushCancelFlow::with_mode(&graph, &data, PhiMode::Hardened);
    let mut sim = Simulator::new(&graph, pcf, plan, 2024);

    let all_mean = {
        let mut acc = Dd::ZERO;
        for &t in &temps {
            acc += t;
        }
        (acc / n as f64).to_f64()
    };
    println!("mean of all 100 sensors: {all_mean:.10}\n");

    println!(
        "{:>6} {:>16} {:>14}  note",
        "round", "sensor 0 reads", "max |err|"
    );
    for checkpoint in [20u64, 60, 119, 125, 160, 300, 600, 1200] {
        while sim.round() < checkpoint {
            sim.step();
        }
        let worst = sim
            .alive_nodes()
            .map(|i| (sim.protocol().scalar_estimate(i) - all_mean).abs())
            .fold(0.0f64, f64::max);
        let note = match checkpoint {
            119 => "last round before the crash",
            125 => "sensor 13 just died",
            _ => "",
        };
        println!(
            "{checkpoint:>6} {:>16.10} {worst:>14.2e}  {note}",
            sim.protocol().scalar_estimate(0)
        );
    }

    let stats = sim.stats();
    println!(
        "\ntransport: {} sent, {} delivered, {} lost to the radio",
        stats.sent, stats.delivered, stats.lost_random
    );

    let ests: Vec<f64> = sim
        .alive_nodes()
        .map(|i| sim.protocol().scalar_estimate(i))
        .collect();
    let lo = ests.iter().cloned().fold(f64::MAX, f64::min);
    let hi = ests.iter().cloned().fold(f64::MIN, f64::max);
    let spread = hi - lo;
    println!("final spread across the 99 survivors: {spread:.2e} °C");
    println!(
        "final consensus offset from the 100-sensor mean: {:.2e} °C",
        (lo - all_mean).abs()
    );
    assert!(spread < 1e-9, "sensors should agree, spread={spread:e}");
    assert!(
        (lo - all_mean).abs() < 1e-4,
        "the dead sensor's diffused reading should keep the target near the full mean"
    );
}
