//! Facade crate re-exporting the public API of the `gossip-reduce` workspace.
pub use gr_batch as batch;
pub use gr_dmgs as dmgs;
pub use gr_linalg as linalg;
pub use gr_netsim as netsim;
pub use gr_numerics as numerics;
pub use gr_reduction as reduction;
pub use gr_spectral as spectral;
pub use gr_topology as topology;
